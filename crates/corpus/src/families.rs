//! Structural matrix generators, one per application family of the
//! SuiteSparse collection as characterised in the paper.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sparsemat::{CooMatrix, CsrMatrix, Permutation};

pub(crate) fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// 5-point Laplacian on an `nx × ny` grid — the classic 2D FEM/stencil
/// matrix (solid mechanics, heat equations). Naturally well-ordered:
/// bandwidth `nx`.
pub fn mesh2d(nx: usize, ny: usize) -> CsrMatrix {
    let idx = |x: usize, y: usize| y * nx + x;
    let n = nx * ny;
    let mut coo = CooMatrix::with_capacity(n, n, 5 * n);
    for y in 0..ny {
        for x in 0..nx {
            let i = idx(x, y);
            coo.push(i, i, 4.0);
            if x + 1 < nx {
                coo.push_symmetric(i, idx(x + 1, y), -1.0);
            }
            if y + 1 < ny {
                coo.push_symmetric(i, idx(x, y + 1), -1.0);
            }
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// 7-point Laplacian on an `nx × ny × nz` grid — 3D mechanics/CFD
/// (`Flan_1565`-like structure).
pub fn mesh3d(nx: usize, ny: usize, nz: usize) -> CsrMatrix {
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    let n = nx * ny * nz;
    let mut coo = CooMatrix::with_capacity(n, n, 7 * n);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = idx(x, y, z);
                coo.push(i, i, 6.0);
                if x + 1 < nx {
                    coo.push_symmetric(i, idx(x + 1, y, z), -1.0);
                }
                if y + 1 < ny {
                    coo.push_symmetric(i, idx(x, y + 1, z), -1.0);
                }
                if z + 1 < nz {
                    coo.push_symmetric(i, idx(x, y, z + 1), -1.0);
                }
            }
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// Symmetric banded matrix of half-bandwidth `half_bw` — 1D mechanics
/// chains and higher-order stencils.
pub fn banded(n: usize, half_bw: usize) -> CsrMatrix {
    let mut coo = CooMatrix::with_capacity(n, n, n * (2 * half_bw + 1));
    for i in 0..n {
        coo.push(i, i, 2.0 * (half_bw as f64 + 1.0));
        for d in 1..=half_bw {
            if i + d < n {
                coo.push_symmetric(i, i + d, -1.0);
            }
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// Symmetric Erdős–Rényi random matrix with ~`avg_deg` off-diagonals
/// per row — optimisation / KKT-like unstructured coupling. No
/// exploitable locality in any order.
pub fn random_er(n: usize, avg_deg: usize, seed: u64) -> CsrMatrix {
    let mut r = rng(seed);
    let mut coo = CooMatrix::with_capacity(n, n, n * (avg_deg + 1));
    for i in 0..n {
        coo.push(i, i, avg_deg as f64 + 1.0);
    }
    let edges = n * avg_deg / 2;
    for _ in 0..edges {
        let i = r.gen_range(0..n);
        let j = r.gen_range(0..n);
        if i != j {
            coo.push_symmetric(i.max(j), i.min(j), -1.0);
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// R-MAT power-law graph (a=0.57, b=0.19, c=0.19, d=0.05, the Graph500
/// parameters) — social networks and web graphs (`com-Amazon`,
/// `kron_g500`-like). Heavy-tailed degrees: a few extremely dense rows.
pub fn rmat(scale: u32, avg_deg: usize, seed: u64) -> CsrMatrix {
    let n = 1usize << scale;
    let mut r = rng(seed);
    let mut coo = CooMatrix::with_capacity(n, n, n * (avg_deg + 1));
    for i in 0..n {
        coo.push(i, i, 1.0);
    }
    let edges = n * avg_deg / 2;
    for _ in 0..edges {
        let (mut lo_i, mut hi_i) = (0usize, n);
        let (mut lo_j, mut hi_j) = (0usize, n);
        while hi_i - lo_i > 1 {
            let p: f64 = r.gen();
            let (down, right) = if p < 0.57 {
                (false, false)
            } else if p < 0.76 {
                (false, true)
            } else if p < 0.95 {
                (true, false)
            } else {
                (true, true)
            };
            let mid_i = (lo_i + hi_i) / 2;
            let mid_j = (lo_j + hi_j) / 2;
            if down {
                lo_i = mid_i;
            } else {
                hi_i = mid_i;
            }
            if right {
                lo_j = mid_j;
            } else {
                hi_j = mid_j;
            }
        }
        if lo_i != lo_j {
            coo.push_symmetric(lo_i, lo_j, 1.0);
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// de Bruijn-style genome assembly graph stand-in (`kmer_V1r`-like):
/// every vertex has at most 4 pseudo-random successors (the 4 possible
/// nucleotide extensions), giving a sparse, enormous-diameter,
/// locality-free pattern.
pub fn genome(n: usize, seed: u64) -> CsrMatrix {
    let mut r = rng(seed);
    let mut coo = CooMatrix::with_capacity(n, n, 5 * n);
    for i in 0..n {
        coo.push(i, i, 1.0);
        let succ = r.gen_range(1..=2usize);
        for _ in 0..succ {
            // Multiplicative hashing scatters successors uniformly —
            // exactly the "random" adjacency a k-mer numbering induces.
            let j = (i
                .wrapping_mul(0x9E3779B97F4A7C15usize % n.max(2))
                .wrapping_add(r.gen_range(0..n)))
                % n;
            if i != j {
                coo.push_symmetric(i.max(j), i.min(j), 1.0);
            }
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// Road-network stand-in (`europe_osm`-like): a sparse near-planar grid
/// with many deleted edges and degree ≈ 2–3, long diameter.
pub fn road(nx: usize, ny: usize, seed: u64) -> CsrMatrix {
    let mut r = rng(seed);
    let idx = |x: usize, y: usize| y * nx + x;
    let n = nx * ny;
    let mut coo = CooMatrix::with_capacity(n, n, 4 * n);
    for i in 0..n {
        coo.push(i, i, 1.0);
    }
    for y in 0..ny {
        for x in 0..nx {
            let i = idx(x, y);
            if x + 1 < nx && r.gen_bool(0.75) {
                coo.push_symmetric(i, idx(x + 1, y), 1.0);
            }
            if y + 1 < ny && r.gen_bool(0.75) {
                coo.push_symmetric(i, idx(x, y + 1), 1.0);
            }
            // Occasional highway shortcut.
            if r.gen_bool(0.002) {
                let j = r.gen_range(0..n);
                if i != j {
                    coo.push_symmetric(i.max(j), i.min(j), 1.0);
                }
            }
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// Circuit-simulation stand-in (`Freescale2`-like): strong diagonal,
/// short-range couplings, plus a few dense rows/columns (power and
/// ground nets touching a large fraction of the circuit).
pub fn circuit(n: usize, seed: u64) -> CsrMatrix {
    let mut r = rng(seed);
    let mut coo = CooMatrix::with_capacity(n, n, 6 * n);
    for i in 0..n {
        coo.push(i, i, 8.0);
        // Local couplings within a neighbourhood window.
        for _ in 0..2 {
            let off = r.gen_range(1..30usize);
            if i + off < n {
                coo.push_symmetric(i, i + off, -1.0);
            }
        }
        // Sparse long-range couplings.
        if r.gen_bool(0.1) {
            let j = r.gen_range(0..n);
            if i != j {
                coo.push_symmetric(i.max(j), i.min(j), -0.5);
            }
        }
    }
    // Dense nets: a handful of rows touching ~2 % of the circuit each.
    let nets = (n / 2000).clamp(2, 8);
    for k in 0..nets {
        let hub = r.gen_range(0..n);
        let fanout = n / 50;
        for _ in 0..fanout {
            let j = r.gen_range(0..n);
            if hub != j {
                coo.push_symmetric(hub.max(j), hub.min(j), -0.25);
            }
        }
        let _ = k;
    }
    CsrMatrix::from_coo(&coo)
}

/// Block-diagonal multiphysics stand-in: `nblocks` dense-ish diagonal
/// blocks of size `bs` with sparse inter-block coupling.
pub fn block_diag(nblocks: usize, bs: usize, seed: u64) -> CsrMatrix {
    let mut r = rng(seed);
    let n = nblocks * bs;
    let mut coo = CooMatrix::with_capacity(n, n, n * bs / 2);
    for b in 0..nblocks {
        let base = b * bs;
        for i in 0..bs {
            coo.push(base + i, base + i, bs as f64);
            for j in (i + 1)..bs {
                if r.gen_bool(0.4) {
                    coo.push_symmetric(base + i, base + j, -1.0);
                }
            }
        }
        // Couple to the next block sparsely.
        if b + 1 < nblocks {
            for _ in 0..bs / 4 {
                let i = base + r.gen_range(0..bs);
                let j = base + bs + r.gen_range(0..bs);
                coo.push_symmetric(j, i, -0.5);
            }
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// Mixed-density matrix: mostly 2–4 nnz rows with a small fraction of
/// very heavy rows — the pattern that provokes 1D load imbalance
/// (Fig. 4's Class 5) and exercises Gray's dense/sparse split.
pub fn dense_rows_mix(n: usize, heavy_fraction: f64, seed: u64) -> CsrMatrix {
    let mut r = rng(seed);
    let mut coo = CooMatrix::with_capacity(n, n, 4 * n);
    for i in 0..n {
        coo.push(i, i, 4.0);
        if r.gen_bool(heavy_fraction) {
            // Heavy row: ~n/100 entries scattered everywhere.
            for _ in 0..(n / 100).max(30) {
                let j = r.gen_range(0..n);
                if i != j {
                    coo.push(i, j, -0.1);
                }
            }
        } else {
            for _ in 0..2 {
                let j = r.gen_range(0..n);
                if i != j {
                    coo.push(i, j, -1.0);
                }
            }
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// Dense tall-and-skinny matrix stored as CSR — the §4.2 bandwidth
/// reference (the paper uses 96 000 × 4 000; callers scale as needed).
pub fn tall_dense(rows: usize, cols: usize) -> CsrMatrix {
    let mut rowptr = Vec::with_capacity(rows + 1);
    rowptr.push(0usize);
    let mut colidx = Vec::with_capacity(rows * cols);
    let mut values = Vec::with_capacity(rows * cols);
    for i in 0..rows {
        for j in 0..cols {
            colidx.push(j as u32);
            values.push(((i + j) % 7) as f64 + 1.0);
        }
        rowptr.push(colidx.len());
    }
    CsrMatrix::from_parts_unchecked(rows, cols, rowptr, colidx, values)
}

/// Apply a random symmetric permutation, destroying whatever locality
/// the natural order had. This models SuiteSparse matrices whose stored
/// order reflects application construction order rather than locality.
pub fn scramble(a: &CsrMatrix, seed: u64) -> CsrMatrix {
    let n = a.nrows();
    let mut r = rng(seed);
    let mut order: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = r.gen_range(0..=i);
        order.swap(i, j);
    }
    let p = Permutation::from_new_to_old(order).expect("shuffle is a permutation");
    a.permute_symmetric(&p).expect("corpus matrices are square")
}

/// Add `fraction * nnz` random symmetric off-diagonal entries.
///
/// Real application matrices are rarely pure stencils: FEM constraint
/// couplings, circuit supply nets and contact conditions add stray
/// long-range entries. These matter for reordering studies because a
/// handful of long edges inflate *max*-type features (bandwidth) that
/// RCM optimises while leaving *sum*-type features (edge-cut, profile)
/// that GP/HP optimise nearly unchanged.
pub fn with_random_edges(a: &CsrMatrix, fraction: f64, seed: u64) -> CsrMatrix {
    let n = a.nrows();
    let extra = ((a.nnz() as f64 * fraction) / 2.0).ceil() as usize;
    let mut r = rng(seed);
    let mut coo = CooMatrix::with_capacity(n, n, a.nnz() + 2 * extra);
    for (i, j, v) in a.iter() {
        coo.push(i, j, v);
    }
    for _ in 0..extra {
        let i = r.gen_range(0..n);
        let j = r.gen_range(0..n);
        if i != j {
            coo.push_symmetric(i.max(j), i.min(j), -0.01);
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// Apply a *partial* symmetric permutation: `fraction` of the rows are
/// involved in random swaps, the rest keep their natural positions.
/// This models the common SuiteSparse situation of an application order
/// that is decent but not optimal — the regime where the paper's
/// typical speedups (0.5–1.5×) live.
pub fn partial_scramble(a: &CsrMatrix, fraction: f64, seed: u64) -> CsrMatrix {
    let n = a.nrows();
    let mut r = rng(seed);
    let mut order: Vec<u32> = (0..n as u32).collect();
    let swaps = ((n as f64 * fraction) / 2.0) as usize;
    for _ in 0..swaps {
        let i = r.gen_range(0..n);
        let j = r.gen_range(0..n);
        order.swap(i, j);
    }
    let p = Permutation::from_new_to_old(order).expect("swaps preserve permutation");
    a.permute_symmetric(&p).expect("corpus matrices are square")
}

/// Make a symmetric matrix symmetric positive definite by resetting the
/// diagonal to (weighted degree + 1) — strict diagonal dominance.
pub fn make_spd(a: &CsrMatrix) -> CsrMatrix {
    let n = a.nrows();
    let mut coo = CooMatrix::with_capacity(n, n, a.nnz() + n);
    let mut offdiag_abs = vec![0.0f64; n];
    for (i, j, v) in a.iter() {
        if i != j {
            coo.push(i, j, v);
            offdiag_abs[i] += v.abs();
        }
    }
    for i in 0..n {
        coo.push(i, i, offdiag_abs[i] + 1.0);
    }
    CsrMatrix::from_coo(&coo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::is_structurally_symmetric;

    #[test]
    fn mesh2d_structure() {
        let a = mesh2d(10, 8);
        assert_eq!(a.nrows(), 80);
        assert!(is_structurally_symmetric(&a));
        // Interior vertex has 5 entries (diag + 4 neighbours).
        assert_eq!(a.row_nnz(10 + 5), 5);
        // Corner has 3.
        assert_eq!(a.row_nnz(0), 3);
    }

    #[test]
    fn mesh3d_structure() {
        let a = mesh3d(5, 5, 5);
        assert_eq!(a.nrows(), 125);
        assert!(is_structurally_symmetric(&a));
        let center = (2 * 5 + 2) * 5 + 2;
        assert_eq!(a.row_nnz(center), 7);
    }

    #[test]
    fn banded_has_expected_bandwidth() {
        let a = banded(50, 3);
        assert!(is_structurally_symmetric(&a));
        for (i, j, _) in a.iter() {
            assert!(i.abs_diff(j) <= 3);
        }
    }

    #[test]
    fn rmat_has_heavy_tail() {
        let a = rmat(10, 8, 1); // 1024 vertices
        assert!(is_structurally_symmetric(&a));
        let max_deg = (0..a.nrows()).map(|i| a.row_nnz(i)).max().unwrap();
        let avg_deg = a.nnz() / a.nrows();
        assert!(
            max_deg > 6 * avg_deg,
            "R-MAT should be heavy-tailed: max {max_deg}, avg {avg_deg}"
        );
    }

    #[test]
    fn genome_is_sparse_with_low_degree() {
        let a = genome(2000, 3);
        assert!(is_structurally_symmetric(&a));
        let avg = a.nnz() as f64 / a.nrows() as f64;
        assert!(avg < 8.0, "genome graphs are very sparse: {avg}");
    }

    #[test]
    fn circuit_has_dense_nets() {
        let a = circuit(4000, 5);
        assert!(is_structurally_symmetric(&a));
        let max_deg = (0..a.nrows()).map(|i| a.row_nnz(i)).max().unwrap();
        assert!(max_deg > 50, "circuit should have dense nets: {max_deg}");
    }

    #[test]
    fn road_is_sparse_long_diameter() {
        let a = road(40, 40, 7);
        assert!(is_structurally_symmetric(&a));
        let avg = a.nnz() as f64 / a.nrows() as f64;
        assert!(avg < 5.0);
    }

    #[test]
    fn dense_rows_mix_is_imbalanced() {
        let a = dense_rows_mix(3000, 0.01, 11);
        let max_deg = (0..a.nrows()).map(|i| a.row_nnz(i)).max().unwrap();
        assert!(max_deg >= 30);
    }

    #[test]
    fn scramble_preserves_nnz_and_symmetry() {
        let a = mesh2d(12, 12);
        let s = scramble(&a, 42);
        assert_eq!(s.nnz(), a.nnz());
        assert!(is_structurally_symmetric(&s));
        assert_ne!(s, a);
        // Deterministic.
        assert_eq!(scramble(&a, 42), s);
    }

    #[test]
    fn make_spd_is_diagonally_dominant() {
        let a = scramble(&mesh2d(8, 8), 1);
        let spd = make_spd(&a);
        for i in 0..spd.nrows() {
            let (cols, vals) = spd.row(i);
            let mut diag = 0.0;
            let mut off = 0.0;
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                if c as usize == i {
                    diag = v;
                } else {
                    off += v.abs();
                }
            }
            assert!(diag > off, "row {i} not dominant: {diag} vs {off}");
        }
        // Actually factorisable.
        assert!(cholesky_smoke(&spd));
    }

    fn cholesky_smoke(a: &CsrMatrix) -> bool {
        // Dense LLᵀ check on small matrices only.
        let n = a.nrows();
        let mut m = vec![vec![0.0f64; n]; n];
        for (i, j, v) in a.iter() {
            m[i][j] = v;
        }
        for k in 0..n {
            if m[k][k] <= 0.0 {
                return false;
            }
            m[k][k] = m[k][k].sqrt();
            for i in k + 1..n {
                m[i][k] /= m[k][k];
            }
            for j in k + 1..n {
                for i in j..n {
                    m[i][j] -= m[i][k] * m[j][k];
                }
            }
        }
        true
    }

    #[test]
    fn tall_dense_shape() {
        let a = tall_dense(100, 40);
        assert_eq!(a.nrows(), 100);
        assert_eq!(a.ncols(), 40);
        assert_eq!(a.nnz(), 4000);
    }

    #[test]
    fn block_diag_structure() {
        let a = block_diag(5, 20, 9);
        assert_eq!(a.nrows(), 100);
        assert!(is_structurally_symmetric(&a));
        // Most nonzeros should be inside diagonal blocks.
        let inside = a.iter().filter(|&(i, j, _)| i / 20 == j / 20).count();
        assert!(inside as f64 > 0.7 * a.nnz() as f64);
    }
}
