use crate::families;
use sparsemat::CsrMatrix;

/// Corpus scale. `Small` keeps the full pipeline in seconds (tests,
/// smoke runs); `Medium` is the default experiment scale; `Large`
/// approaches the paper's smallest matrices and is used for the
/// overhead table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusSize {
    /// ~1–4 k rows per matrix.
    Small,
    /// ~10–40 k rows per matrix.
    Medium,
    /// ~60–250 k rows per matrix.
    Large,
}

/// How much the stored ordering deviates from the generator's natural
/// order. Real SuiteSparse matrices span this whole range: some arrive
/// in near-optimal application order, some in essentially arbitrary
/// construction order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OrderNoise {
    /// Natural generator order (already well ordered).
    Natural,
    /// Partially degraded: the given fraction of rows swapped randomly.
    Partial(f64),
    /// Fully random symmetric permutation.
    Scrambled,
}

/// A generator recipe for one corpus matrix.
#[derive(Debug, Clone, PartialEq)]
pub enum Generator {
    /// 2D 5-point mesh.
    Mesh2d { nx: usize, ny: usize },
    /// 3D 7-point mesh.
    Mesh3d { nx: usize, ny: usize, nz: usize },
    /// Symmetric band.
    Banded { n: usize, half_bw: usize },
    /// Erdős–Rényi random.
    RandomEr { n: usize, avg_deg: usize },
    /// R-MAT power-law graph.
    Rmat { scale: u32, avg_deg: usize },
    /// Genome / de Bruijn-like.
    Genome { n: usize },
    /// Road network.
    Road { nx: usize, ny: usize },
    /// Circuit with dense nets.
    Circuit { n: usize },
    /// Block-diagonal multiphysics.
    BlockDiag { nblocks: usize, bs: usize },
    /// Mixed sparse/dense rows.
    DenseRowsMix { n: usize, heavy: f64 },
    /// Dense tall-skinny reference.
    TallDense { rows: usize, cols: usize },
}

/// A named, reproducible corpus matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixSpec {
    /// Display name (mimicking SuiteSparse `group/name` style).
    pub name: String,
    /// Structural family group.
    pub group: String,
    /// The generator recipe.
    pub generator: Generator,
    /// Ordering degradation applied to the natural order.
    pub noise: OrderNoise,
    /// Whether to post-process into a symmetric positive definite
    /// matrix (for the Cholesky study).
    pub spd: bool,
    /// Fraction of random stray entries added (models constraint
    /// couplings and supply nets in real application matrices).
    pub extra_edges: f64,
    /// Seed for generator and scramble randomness.
    pub seed: u64,
}

impl MatrixSpec {
    /// Generate the matrix.
    pub fn build(&self) -> CsrMatrix {
        let base = match self.generator {
            Generator::Mesh2d { nx, ny } => families::mesh2d(nx, ny),
            Generator::Mesh3d { nx, ny, nz } => families::mesh3d(nx, ny, nz),
            Generator::Banded { n, half_bw } => families::banded(n, half_bw),
            Generator::RandomEr { n, avg_deg } => families::random_er(n, avg_deg, self.seed),
            Generator::Rmat { scale, avg_deg } => families::rmat(scale, avg_deg, self.seed),
            Generator::Genome { n } => families::genome(n, self.seed),
            Generator::Road { nx, ny } => families::road(nx, ny, self.seed),
            Generator::Circuit { n } => families::circuit(n, self.seed),
            Generator::BlockDiag { nblocks, bs } => families::block_diag(nblocks, bs, self.seed),
            Generator::DenseRowsMix { n, heavy } => families::dense_rows_mix(n, heavy, self.seed),
            Generator::TallDense { rows, cols } => families::tall_dense(rows, cols),
        };
        let base = if self.extra_edges > 0.0 {
            families::with_random_edges(&base, self.extra_edges, self.seed ^ 0x077E_D6E5)
        } else {
            base
        };
        let base = if self.spd {
            families::make_spd(&base)
        } else {
            base
        };
        match self.noise {
            OrderNoise::Natural => base,
            OrderNoise::Partial(f) => families::partial_scramble(&base, f, self.seed ^ 0x9A27_11D3),
            OrderNoise::Scrambled => families::scramble(&base, self.seed ^ 0x5C7A_9B1E),
        }
    }
}

/// Size multiplier per corpus scale.
fn dim(size: CorpusSize, small: usize, medium: usize, large: usize) -> usize {
    match size {
        CorpusSize::Small => small,
        CorpusSize::Medium => medium,
        CorpusSize::Large => large,
    }
}

fn spec(name: &str, group: &str, generator: Generator, noise: OrderNoise, seed: u64) -> MatrixSpec {
    MatrixSpec {
        name: name.to_string(),
        group: group.to_string(),
        generator,
        noise,
        spd: false,
        extra_edges: 0.0,
        seed,
    }
}

/// Like [`spec`], with stray random entries added (see
/// [`families::with_random_edges`]).
fn spec_perturbed(
    name: &str,
    group: &str,
    generator: Generator,
    noise: OrderNoise,
    extra_edges: f64,
    seed: u64,
) -> MatrixSpec {
    MatrixSpec {
        extra_edges,
        ..spec(name, group, generator, noise, seed)
    }
}

/// The standard mixed corpus: the stand-in for the 490-matrix
/// SuiteSparse selection.
///
/// The mixture mirrors the collection's composition: most matrices are
/// in decent (natural or mildly degraded) application order, a minority
/// arrive essentially unordered, and the structural families range from
/// meshes (reordering-friendly) to power-law graphs (reordering-hostile).
pub fn standard_corpus(size: CorpusSize) -> Vec<MatrixSpec> {
    use Generator as G;
    use OrderNoise::*;
    let s = size;
    let mesh = dim(s, 45, 220, 500);
    let mesh3 = dim(s, 13, 36, 62);
    let nn = dim(s, 2000, 50_000, 200_000);
    let rmat_scale = match s {
        CorpusSize::Small => 11,
        CorpusSize::Medium => 15,
        CorpusSize::Large => 17,
    };
    vec![
        // Meshes: mostly well ordered, one construction-order mess.
        spec(
            "mesh2d_a",
            "FEM",
            G::Mesh2d { nx: mesh, ny: mesh },
            Natural,
            100,
        ),
        spec_perturbed(
            "mesh2d_b",
            "FEM",
            G::Mesh2d {
                nx: 2 * mesh,
                ny: mesh / 2,
            },
            Natural,
            0.01,
            101,
        ),
        spec_perturbed(
            "mesh2d_partial",
            "FEM",
            G::Mesh2d { nx: mesh, ny: mesh },
            Partial(0.3),
            0.02,
            102,
        ),
        spec_perturbed(
            "mesh2d_scrambled",
            "FEM",
            G::Mesh2d { nx: mesh, ny: mesh },
            Scrambled,
            0.02,
            103,
        ),
        spec(
            "mesh3d_a",
            "FEM",
            G::Mesh3d {
                nx: mesh3,
                ny: mesh3,
                nz: mesh3,
            },
            Natural,
            104,
        ),
        spec_perturbed(
            "mesh3d_partial",
            "FEM",
            G::Mesh3d {
                nx: mesh3,
                ny: mesh3,
                nz: mesh3,
            },
            Partial(0.4),
            0.02,
            105,
        ),
        // Bands.
        spec(
            "band_narrow",
            "Mechanics",
            G::Banded { n: nn, half_bw: 2 },
            Natural,
            106,
        ),
        spec_perturbed(
            "band_wide_partial",
            "Mechanics",
            G::Banded {
                n: nn * 3 / 4,
                half_bw: 8,
            },
            Partial(0.3),
            0.02,
            107,
        ),
        spec_perturbed(
            "band_scrambled",
            "Mechanics",
            G::Banded { n: nn, half_bw: 4 },
            Scrambled,
            0.02,
            108,
        ),
        // Random / optimisation (no exploitable order in any case).
        spec(
            "random_er_d4",
            "Optimization",
            G::RandomEr {
                n: nn * 3 / 4,
                avg_deg: 4,
            },
            Natural,
            110,
        ),
        spec(
            "random_er_d8",
            "Optimization",
            G::RandomEr {
                n: nn * 3 / 4,
                avg_deg: 8,
            },
            Natural,
            111,
        ),
        spec(
            "random_er_d16",
            "Optimization",
            G::RandomEr {
                n: nn / 2,
                avg_deg: 16,
            },
            Natural,
            112,
        ),
        // Power-law graphs.
        spec(
            "rmat_d8",
            "SNAP",
            G::Rmat {
                scale: rmat_scale,
                avg_deg: 8,
            },
            Natural,
            120,
        ),
        spec(
            "rmat_d16",
            "SNAP",
            G::Rmat {
                scale: rmat_scale,
                avg_deg: 16,
            },
            Natural,
            121,
        ),
        spec(
            "rmat_big",
            "SNAP",
            G::Rmat {
                scale: rmat_scale + 1,
                avg_deg: 8,
            },
            Natural,
            122,
        ),
        // Genome graphs.
        spec(
            "genome_a",
            "GenBank",
            G::Genome { n: nn * 3 / 2 },
            Natural,
            130,
        ),
        spec("genome_b", "GenBank", G::Genome { n: nn }, Natural, 131),
        // Road networks.
        spec(
            "road_a",
            "DIMACS10",
            G::Road { nx: mesh, ny: mesh },
            Natural,
            140,
        ),
        spec(
            "road_partial",
            "DIMACS10",
            G::Road { nx: mesh, ny: mesh },
            Partial(0.5),
            141,
        ),
        // Circuits.
        spec(
            "circuit_a",
            "Freescale",
            G::Circuit { n: nn * 3 / 2 },
            Natural,
            150,
        ),
        spec(
            "circuit_partial",
            "Freescale",
            G::Circuit { n: nn },
            Partial(0.4),
            151,
        ),
        // Block-structured multiphysics.
        spec(
            "blocks_a",
            "Multiphysics",
            G::BlockDiag {
                nblocks: nn / 50,
                bs: 24,
            },
            Natural,
            160,
        ),
        spec_perturbed(
            "blocks_scrambled",
            "Multiphysics",
            G::BlockDiag {
                nblocks: nn / 50,
                bs: 24,
            },
            Scrambled,
            0.01,
            161,
        ),
        // Ordering-insensitive matrices: small enough that every order
        // fits in (scaled) last-level cache, or so irregular that no
        // order helps. The real collection is full of both kinds — they
        // are what pins the paper's medians near 1.0.
        spec(
            "mesh2d_small(HV15R-regime)",
            "Fluid",
            G::Mesh2d {
                nx: mesh / 3,
                ny: mesh / 3,
            },
            Natural,
            180,
        ),
        spec(
            "mesh3d_small",
            "Fluid",
            G::Mesh3d {
                nx: mesh3 / 2,
                ny: mesh3 / 2,
                nz: mesh3 / 2,
            },
            Natural,
            181,
        ),
        spec(
            "circuit_small",
            "Freescale",
            G::Circuit { n: nn / 6 },
            Natural,
            182,
        ),
        spec(
            "rmat_d6",
            "SNAP",
            G::Rmat {
                scale: rmat_scale,
                avg_deg: 6,
            },
            Natural,
            183,
        ),
        spec("genome_c", "GenBank", G::Genome { n: nn / 2 }, Natural, 184),
        spec(
            "random_er_d12",
            "Optimization",
            G::RandomEr {
                n: nn / 2,
                avg_deg: 12,
            },
            Natural,
            185,
        ),
        // Imbalance-provoking mixes.
        spec(
            "mixed_density",
            "PowerSystem",
            G::DenseRowsMix { n: nn, heavy: 0.01 },
            Natural,
            170,
        ),
        spec(
            "mixed_density_heavy",
            "PowerSystem",
            G::DenseRowsMix {
                n: nn * 3 / 4,
                heavy: 0.03,
            },
            Natural,
            171,
        ),
    ]
}

/// The SPD subset used for the Cholesky fill study (Fig. 6): symmetric
/// positive definite versions of the structurally symmetric families.
pub fn spd_corpus(size: CorpusSize) -> Vec<MatrixSpec> {
    standard_corpus(size)
        .into_iter()
        .filter(|m| {
            matches!(
                m.generator,
                Generator::Mesh2d { .. }
                    | Generator::Mesh3d { .. }
                    | Generator::Banded { .. }
                    | Generator::RandomEr { .. }
                    | Generator::Road { .. }
                    | Generator::BlockDiag { .. }
            )
        })
        .map(|mut m| {
            m.spd = true;
            m.name = format!("{}_spd", m.name);
            m
        })
        .collect()
}

/// The three Fig. 1 matrices: circuit-sim, social network and genome
/// stand-ins for Freescale/Freescale2, SNAP/com-Amazon and
/// GenBank/kmer_V1r.
pub fn fig1_matrices(size: CorpusSize) -> Vec<MatrixSpec> {
    vec![
        spec(
            "Freescale2-like",
            "Freescale",
            Generator::Circuit {
                n: dim(size, 4000, 40_000, 160_000),
            },
            OrderNoise::Partial(0.3),
            201,
        ),
        spec(
            "com-Amazon-like",
            "SNAP",
            Generator::Rmat {
                scale: match size {
                    CorpusSize::Small => 11,
                    CorpusSize::Medium => 14,
                    CorpusSize::Large => 17,
                },
                avg_deg: 6,
            },
            OrderNoise::Natural,
            202,
        ),
        spec(
            "kmer_V1r-like",
            "GenBank",
            Generator::Genome {
                n: dim(size, 4000, 40_000, 200_000),
            },
            OrderNoise::Natural,
            203,
        ),
    ]
}

/// Six class representatives for the Fig. 4 in-depth analysis, chosen
/// to reproduce the six behaviour classes:
///
/// 1. balanced before and after, locality gains (333SP-like mesh);
/// 2. reordering also fixes balance (nv2-like);
/// 3. only balance improves (audikw_1-like);
/// 4. nothing changes (HV15R-like, already good order);
/// 5. reordering provokes 1D imbalance;
/// 6. mixed behaviour across schemes.
pub fn class_representatives(size: CorpusSize) -> Vec<(u8, MatrixSpec)> {
    vec![
        (
            1,
            spec(
                "class1_mesh(333SP-like)",
                "DIMACS10",
                Generator::Mesh2d {
                    nx: dim(size, 60, 200, 500),
                    ny: dim(size, 60, 200, 500),
                },
                OrderNoise::Scrambled,
                301,
            ),
        ),
        (
            2,
            spec(
                "class2_semiconductor(nv2-like)",
                "Semiconductor",
                Generator::DenseRowsMix {
                    n: dim(size, 3000, 25_000, 100_000),
                    heavy: 0.005,
                },
                OrderNoise::Scrambled,
                302,
            ),
        ),
        (
            3,
            spec(
                "class3_fem(audikw-like)",
                "FEM",
                Generator::BlockDiag {
                    nblocks: dim(size, 30, 250, 1000),
                    bs: 30,
                },
                OrderNoise::Partial(0.3),
                303,
            ),
        ),
        (
            4,
            spec(
                "class4_cfd(HV15R-like)",
                "Fluid",
                Generator::Mesh3d {
                    nx: dim(size, 13, 28, 55),
                    ny: dim(size, 13, 28, 55),
                    nz: dim(size, 13, 28, 55),
                },
                OrderNoise::Natural,
                304,
            ),
        ),
        (
            5,
            spec(
                "class5_powerlaw",
                "SNAP",
                Generator::Rmat {
                    scale: match size {
                        CorpusSize::Small => 11,
                        CorpusSize::Medium => 14,
                        CorpusSize::Large => 16,
                    },
                    avg_deg: 12,
                },
                OrderNoise::Natural,
                305,
            ),
        ),
        (
            6,
            spec(
                "class6_genome",
                "GenBank",
                Generator::Genome {
                    n: dim(size, 3500, 30_000, 120_000),
                },
                OrderNoise::Natural,
                306,
            ),
        ),
    ]
}

/// The reordering-overhead subset (Table 5): the largest corpus
/// matrices across application domains.
pub fn overhead_matrices(size: CorpusSize) -> Vec<MatrixSpec> {
    use Generator as G;
    use OrderNoise::*;
    let mut v = vec![
        spec(
            "road_large(europe_osm-like)",
            "DIMACS10",
            G::Road {
                nx: dim(size, 60, 180, 450),
                ny: dim(size, 60, 180, 450),
            },
            Natural,
            401,
        ),
        spec(
            "mesh3d_large(Flan-like)",
            "FEM",
            G::Mesh3d {
                nx: dim(size, 14, 30, 60),
                ny: dim(size, 14, 30, 60),
                nz: dim(size, 14, 30, 60),
            },
            Partial(0.3),
            402,
        ),
        spec(
            "cfd_large(HV15R-like)",
            "Fluid",
            G::Mesh3d {
                nx: dim(size, 16, 34, 64),
                ny: dim(size, 13, 28, 55),
                nz: dim(size, 13, 28, 55),
            },
            Natural,
            403,
        ),
        spec(
            "web_large(indochina-like)",
            "LAW",
            G::Rmat {
                scale: match size {
                    CorpusSize::Small => 11,
                    CorpusSize::Medium => 14,
                    CorpusSize::Large => 17,
                },
                avg_deg: 12,
            },
            Natural,
            404,
        ),
        spec(
            "genome_large(kmer-like)",
            "GenBank",
            G::Genome {
                n: dim(size, 4000, 40_000, 250_000),
            },
            Natural,
            405,
        ),
        spec(
            "kron_large(kron_g500-like)",
            "DIMACS10",
            G::Rmat {
                scale: match size {
                    CorpusSize::Small => 11,
                    CorpusSize::Medium => 15,
                    CorpusSize::Large => 17,
                },
                avg_deg: 16,
            },
            Natural,
            406,
        ),
        spec(
            "delaunay_like",
            "DIMACS10",
            G::Mesh2d {
                nx: dim(size, 70, 220, 550),
                ny: dim(size, 70, 220, 550),
            },
            Scrambled,
            407,
        ),
        spec(
            "opt_large(nlpkkt-like)",
            "Schenk",
            G::RandomEr {
                n: dim(size, 2500, 25_000, 120_000),
                avg_deg: 12,
            },
            Natural,
            408,
        ),
        spec(
            "stokes_like(vas_stokes-like)",
            "VLSI",
            G::Circuit {
                n: dim(size, 3500, 35_000, 150_000),
            },
            Natural,
            409,
        ),
        spec(
            "mycielskian_like",
            "Mycielski",
            G::RandomEr {
                n: dim(size, 1200, 8_000, 30_000),
                avg_deg: 40,
            },
            Natural,
            410,
        ),
    ];
    v.truncate(10);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_corpus_builds_and_is_diverse() {
        let specs = standard_corpus(CorpusSize::Small);
        assert!(specs.len() >= 20, "corpus has {} matrices", specs.len());
        let mut names = std::collections::HashSet::new();
        for s in &specs {
            assert!(names.insert(s.name.clone()), "duplicate name {}", s.name);
            let a = s.build();
            assert!(a.nrows() > 100, "{} too small", s.name);
            assert!(a.nnz() > 500, "{} too sparse", s.name);
            a.validate().unwrap();
        }
        // At least 7 distinct groups.
        let groups: std::collections::HashSet<_> = specs.iter().map(|s| s.group.clone()).collect();
        assert!(groups.len() >= 7, "only {} groups", groups.len());
        // The noise mixture includes all three levels.
        assert!(specs.iter().any(|s| s.noise == OrderNoise::Natural));
        assert!(specs
            .iter()
            .any(|s| matches!(s.noise, OrderNoise::Partial(_))));
        assert!(specs.iter().any(|s| s.noise == OrderNoise::Scrambled));
    }

    #[test]
    fn corpus_is_deterministic() {
        let a1 = standard_corpus(CorpusSize::Small)[0].build();
        let a2 = standard_corpus(CorpusSize::Small)[0].build();
        assert_eq!(a1, a2);
    }

    #[test]
    fn partial_scramble_is_between_natural_and_scrambled() {
        let natural = spec(
            "m",
            "g",
            Generator::Mesh2d { nx: 40, ny: 40 },
            OrderNoise::Natural,
            7,
        )
        .build();
        let partial = spec(
            "m",
            "g",
            Generator::Mesh2d { nx: 40, ny: 40 },
            OrderNoise::Partial(0.3),
            7,
        )
        .build();
        let scrambled = spec(
            "m",
            "g",
            Generator::Mesh2d { nx: 40, ny: 40 },
            OrderNoise::Scrambled,
            7,
        )
        .build();
        let bw = |a: &CsrMatrix| a.iter().map(|(i, j, _)| i.abs_diff(j)).max().unwrap_or(0);
        // Partial degrades bandwidth but all three share nnz.
        assert_eq!(natural.nnz(), partial.nnz());
        assert_eq!(natural.nnz(), scrambled.nnz());
        assert!(bw(&natural) < bw(&partial));
    }

    #[test]
    fn medium_is_larger_than_small() {
        let s = standard_corpus(CorpusSize::Small);
        let m = standard_corpus(CorpusSize::Medium);
        assert_eq!(s.len(), m.len());
        let total_s: usize = s.iter().take(3).map(|x| x.build().nnz()).sum();
        let total_m: usize = m.iter().take(3).map(|x| x.build().nnz()).sum();
        assert!(total_m > 3 * total_s);
    }

    #[test]
    fn spd_corpus_is_factorisable_pattern() {
        let specs = spd_corpus(CorpusSize::Small);
        assert!(specs.len() >= 8);
        for s in specs.iter().take(3) {
            let a = s.build();
            assert!(sparsemat::is_structurally_symmetric(&a), "{}", s.name);
        }
    }

    #[test]
    fn fig1_and_class_and_overhead_sets_have_expected_counts() {
        assert_eq!(fig1_matrices(CorpusSize::Small).len(), 3);
        let classes = class_representatives(CorpusSize::Small);
        assert_eq!(classes.len(), 6);
        let ids: Vec<u8> = classes.iter().map(|(c, _)| *c).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(overhead_matrices(CorpusSize::Small).len(), 10);
    }
}
