//! Dynamic-matrix workloads: multi-component families and mutation traces.
//!
//! The incremental-reordering path in `engine` splices cached per-component
//! sub-permutations when a delta touches only a few components. Exercising
//! that path needs two things the static families do not provide: matrices
//! whose component structure is known by construction, and deterministic
//! streams of structural edits to replay against them. Both live here.

use crate::{mesh2d, scramble};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use sparsemat::{CooMatrix, CsrMatrix, EdgeOp};

/// Block-diagonal union of square matrices with **no** coupling edges.
///
/// Unlike [`crate::block_diag`], which ties adjacent blocks into one
/// connected matrix, the parts here share no edges: if every part is
/// connected, the result has exactly `parts.len()` connected components,
/// one per part, occupying consecutive index ranges.
pub fn disjoint_union(parts: &[CsrMatrix]) -> CsrMatrix {
    assert!(!parts.is_empty());
    for p in parts {
        assert_eq!(p.nrows(), p.ncols(), "disjoint_union needs square parts");
    }
    let n: usize = parts.iter().map(|m| m.nrows()).sum();
    let nnz: usize = parts.iter().map(|m| m.nnz()).sum();
    let mut coo = CooMatrix::with_capacity(n, n, nnz);
    let mut off = 0;
    for m in parts {
        for (i, j, v) in m.iter() {
            coo.push(off + i, off + j, v);
        }
        off += m.nrows();
    }
    CsrMatrix::from_coo(&coo)
}

/// Disjoint union of `regions` independently scrambled 2D meshes.
///
/// The result has exactly `regions` connected components. Region sizes
/// are staggered (`nx + region % 3` columns) so per-component
/// sub-permutations differ, and each region is scrambled with its own
/// seed so bandwidth-reducing orderings have real work to do inside
/// every component.
pub fn disjoint_meshes(regions: usize, nx: usize, ny: usize, seed: u64) -> CsrMatrix {
    assert!(regions > 0 && nx > 0 && ny > 0);
    let mats: Vec<CsrMatrix> = (0..regions)
        .map(|r| scramble(&mesh2d(nx + r % 3, ny), seed.wrapping_add(r as u64)))
        .collect();
    disjoint_union(&mats)
}

/// Deterministic stream of symmetric structural edits against `a`.
///
/// Produces `batches` batches of up to `edges_per_batch` edge edits; each
/// edit emits both `(i, j)` and `(j, i)` ops so symmetry is preserved.
/// Every batch is confined to a BFS-local neighborhood of one seed row, so
/// under component-structured reordering a batch dirties at most the
/// components it starts in — removals may split a component but can never
/// touch another, and additions only bridge rows inside the neighborhood.
///
/// Batches are generated against an evolving copy of `a`, so replaying them
/// in order with [`CsrMatrix::apply_delta`] never hits a no-op: removals
/// always target stored entries and additions always target absent ones.
/// Diagonal entries are never removed.
pub fn mutation_trace(
    a: &CsrMatrix,
    batches: usize,
    edges_per_batch: usize,
    seed: u64,
) -> Vec<Vec<EdgeOp>> {
    assert_eq!(a.nrows(), a.ncols(), "mutation_trace needs a square matrix");
    let n = a.nrows();
    assert!(n > 1, "mutation_trace needs at least two rows");
    let mut r = crate::families::rng(seed);
    let mut cur = a.clone();
    let mut trace = Vec::with_capacity(batches);
    for _ in 0..batches {
        let scope = bfs_scope(&cur, r.gen_range(0..n), (4 * edges_per_batch).max(16));
        let mut ops = Vec::with_capacity(2 * edges_per_batch);
        for _ in 0..edges_per_batch {
            if r.gen_bool(0.5) {
                if let Some((i, j)) = pick_removable(&cur, &scope, &mut r) {
                    ops.push(EdgeOp::Remove { row: i, col: j });
                    ops.push(EdgeOp::Remove { row: j, col: i });
                    cur.apply_delta(&ops[ops.len() - 2..])
                        .expect("remove in range");
                }
            } else if let Some((i, j)) = pick_absent(&cur, &scope, &mut r) {
                let value = -0.25;
                ops.push(EdgeOp::Add {
                    row: i,
                    col: j,
                    value,
                });
                ops.push(EdgeOp::Add {
                    row: j,
                    col: i,
                    value,
                });
                cur.apply_delta(&ops[ops.len() - 2..])
                    .expect("add in range");
            }
        }
        trace.push(ops);
    }
    trace
}

/// Collect up to `cap` rows reachable from `start` over the symmetric
/// pattern of `a`, in BFS order. Never leaves `start`'s component.
fn bfs_scope(a: &CsrMatrix, start: usize, cap: usize) -> Vec<usize> {
    let mut seen = vec![false; a.nrows()];
    let mut queue = std::collections::VecDeque::new();
    let mut scope = Vec::with_capacity(cap);
    seen[start] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        scope.push(v);
        if scope.len() >= cap {
            break;
        }
        let (cols, _) = a.row(v);
        for &c in cols {
            let c = c as usize;
            if !seen[c] {
                seen[c] = true;
                queue.push_back(c);
            }
        }
    }
    scope
}

/// Pick a stored off-diagonal symmetric pair with both endpoints in `scope`.
fn pick_removable(a: &CsrMatrix, scope: &[usize], r: &mut ChaCha8Rng) -> Option<(usize, usize)> {
    let in_scope = {
        let mut mask = vec![false; a.nrows()];
        for &v in scope {
            mask[v] = true;
        }
        mask
    };
    for _ in 0..4 * scope.len() {
        let i = scope[r.gen_range(0..scope.len())];
        let (cols, _) = a.row(i);
        if cols.is_empty() {
            continue;
        }
        let j = cols[r.gen_range(0..cols.len())] as usize;
        if j != i && in_scope[j] && a.get(j, i).is_some() {
            return Some((i, j));
        }
    }
    None
}

/// Pick an absent off-diagonal pair with both endpoints in `scope`.
fn pick_absent(a: &CsrMatrix, scope: &[usize], r: &mut ChaCha8Rng) -> Option<(usize, usize)> {
    if scope.len() < 2 {
        return None;
    }
    for _ in 0..4 * scope.len() {
        let i = scope[r.gen_range(0..scope.len())];
        let j = scope[r.gen_range(0..scope.len())];
        if i != j && a.get(i, j).is_none() {
            return Some((i, j));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn components(a: &CsrMatrix) -> usize {
        let n = a.nrows();
        let mut seen = vec![false; n];
        let mut count = 0;
        for s in 0..n {
            if seen[s] {
                continue;
            }
            count += 1;
            let mut stack = vec![s];
            seen[s] = true;
            while let Some(v) = stack.pop() {
                let (cols, _) = a.row(v);
                for &c in cols {
                    let c = c as usize;
                    if !seen[c] {
                        seen[c] = true;
                        stack.push(c);
                    }
                }
            }
        }
        count
    }

    #[test]
    fn disjoint_meshes_has_exactly_that_many_components() {
        let a = disjoint_meshes(7, 5, 4, 11);
        assert_eq!(components(&a), 7);
        assert_eq!(a.nrows(), a.ncols());
        // Staggered sizes: 5*4 + 6*4 + 7*4 repeated.
        assert_eq!(a.nrows(), (5 + 6 + 7) * 4 * 2 + 5 * 4);
    }

    #[test]
    fn mutation_trace_is_deterministic_and_replayable() {
        let a = disjoint_meshes(4, 6, 5, 3);
        let t1 = mutation_trace(&a, 5, 8, 42);
        let t2 = mutation_trace(&a, 5, 8, 42);
        assert_eq!(t1, t2);
        assert_eq!(t1.len(), 5);
        let mut cur = a.clone();
        for batch in &t1 {
            assert!(!batch.is_empty());
            let report = cur.apply_delta(batch).expect("batch applies");
            // Generated against an evolving copy, so nothing is a no-op.
            assert_eq!(report.noops, 0);
            assert_eq!(report.added + report.removed, batch.len());
        }
        assert_ne!(cur.content_hash(), a.content_hash());
    }

    #[test]
    fn mutation_batches_stay_symmetric_and_off_diagonal() {
        let a = disjoint_meshes(3, 5, 5, 9);
        let mut cur = a.clone();
        for batch in mutation_trace(&a, 6, 6, 7) {
            cur.apply_delta(&batch).unwrap();
            for op in &batch {
                match *op {
                    EdgeOp::Add { row, col, .. } | EdgeOp::Remove { row, col } => {
                        assert_ne!(row, col);
                    }
                }
            }
            // Symmetry preserved after every batch.
            for (i, j, _) in cur.iter() {
                assert!(cur.get(j, i).is_some(), "asymmetric at ({i}, {j})");
            }
        }
    }

    #[test]
    fn mutation_trace_never_bridges_components_without_shared_scope() {
        // BFS scopes cannot leave a component, so additions never connect
        // two different components: component count can only grow.
        let a = disjoint_meshes(5, 5, 4, 2);
        let before = components(&a);
        let mut cur = a.clone();
        for batch in mutation_trace(&a, 8, 10, 13) {
            cur.apply_delta(&batch).unwrap();
        }
        assert!(components(&cur) >= before);
    }
}
