#![allow(clippy::needless_range_loop)]

//! Synthetic matrix corpus — the stand-in for the 490 SuiteSparse
//! matrices of the study.
//!
//! The paper's dataset spans meshes from solid/fluid mechanics,
//! semiconductor and circuit problems, road networks, genome assembly
//! graphs, social/web graphs and optimisation problems. Each generator
//! here reproduces the *structural* signature of one of those families
//! — degree distribution, diameter, bandwidth/locality of the natural
//! order, presence of dense rows — because those are what determine how
//! a matrix responds to reordering.
//!
//! Matrices are generated from deterministic seeds, so the whole corpus
//! is bit-reproducible. Most families are emitted in a *scrambled*
//! order (a random symmetric permutation of the natural ordering): the
//! SuiteSparse collection stores matrices in whatever order the
//! application produced, which is usually neither optimal nor random;
//! scrambling gives the reorderings the same kind of recoverable
//! structure the paper's speedups (up to 40×) demonstrate, while the
//! non-scrambled variants reproduce the "already well ordered" cases
//! where reordering is useless or harmful (§1's challenges).

mod families;
mod mutation;
mod spec;

pub use families::*;
pub use mutation::{disjoint_meshes, disjoint_union, mutation_trace};
pub use spec::{
    class_representatives, fig1_matrices, overhead_matrices, spd_corpus, standard_corpus,
    CorpusSize, MatrixSpec,
};
