//! The online corrector: exponentially-weighted residuals between
//! predicted and observed speedups, learned per (feature bucket,
//! algorithm family). Repeated traffic from one corpus family thereby
//! converges to the empirically right choice even when the analytical
//! model is systematically off for that family.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use telemetry::Registry;

use crate::predict::FeatureBucket;

/// Multiplicative correction bounds: a bucket can at most quarter or
/// quadruple the model's prediction, so one outlier observation can
/// never swing decisions arbitrarily.
const RATIO_CLAMP: (f64, f64) = (0.25, 4.0);

/// EWMA residual learner over (bucket, algorithm-name) cells.
pub struct OnlineCorrector {
    alpha: f64,
    ratios: Mutex<HashMap<(FeatureBucket, &'static str), f64>>,
    registry: Arc<Registry>,
}

impl OnlineCorrector {
    /// A corrector with smoothing factor `alpha` (weight of the newest
    /// observation; 0.3 is a reasonable default — a handful of
    /// observations dominates, but one noisy sample does not).
    pub fn new(alpha: f64, registry: Arc<Registry>) -> Self {
        OnlineCorrector {
            alpha: alpha.clamp(0.01, 1.0),
            ratios: Mutex::new(HashMap::new()),
            registry,
        }
    }

    /// Feed one (predicted, observed) speedup pair for a bucket/algo
    /// cell. Both must be positive; degenerate pairs are ignored.
    pub fn observe(
        &self,
        bucket: FeatureBucket,
        algo: &'static str,
        predicted: f64,
        observed: f64,
    ) {
        if !(predicted > 0.0 && observed > 0.0) {
            return;
        }
        let sample = (observed / predicted).clamp(RATIO_CLAMP.0, RATIO_CLAMP.1);
        let mut ratios = self.ratios.lock().unwrap();
        let cell = ratios.entry((bucket, algo)).or_insert(1.0);
        *cell += self.alpha * (sample - *cell);
        let buckets = ratios.len();
        drop(ratios);
        self.registry.counter("policy.corrector.updates").inc();
        self.registry
            .gauge("policy.corrector.cells")
            .set(buckets as i64);
    }

    /// Apply the learned residual ratio to a model prediction. Cells
    /// with no observations pass the prediction through unchanged.
    pub fn correct(&self, bucket: FeatureBucket, algo: &'static str, predicted: f64) -> f64 {
        let ratio = self
            .ratios
            .lock()
            .unwrap()
            .get(&(bucket, algo))
            .copied()
            .unwrap_or(1.0);
        predicted * ratio.clamp(RATIO_CLAMP.0, RATIO_CLAMP.1)
    }

    /// Current residual ratio for a cell (1.0 when unobserved).
    pub fn ratio(&self, bucket: FeatureBucket, algo: &'static str) -> f64 {
        self.ratios
            .lock()
            .unwrap()
            .get(&(bucket, algo))
            .copied()
            .unwrap_or(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bucket() -> FeatureBucket {
        FeatureBucket {
            size: 8,
            reuse: 2,
            skew: 1,
        }
    }

    #[test]
    fn converges_toward_observed_over_predicted() {
        let c = OnlineCorrector::new(0.3, Arc::new(Registry::new()));
        // Model says 2.0x, reality keeps saying 1.0x.
        for _ in 0..30 {
            c.observe(bucket(), "RCM", 2.0, 1.0);
        }
        let corrected = c.correct(bucket(), "RCM", 2.0);
        assert!(
            (corrected - 1.0).abs() < 0.05,
            "corrected prediction was {corrected}"
        );
        // Other cells are untouched.
        assert_eq!(c.correct(bucket(), "AMD", 2.0), 2.0);
    }

    #[test]
    fn clamps_extreme_residuals() {
        let c = OnlineCorrector::new(1.0, Arc::new(Registry::new()));
        c.observe(bucket(), "RCM", 1.0, 1000.0);
        assert!(c.ratio(bucket(), "RCM") <= 4.0);
        c.observe(bucket(), "ND", 1000.0, 1.0);
        assert!(c.ratio(bucket(), "ND") >= 0.25);
    }

    #[test]
    fn ignores_degenerate_samples() {
        let c = OnlineCorrector::new(0.5, Arc::new(Registry::new()));
        c.observe(bucket(), "RCM", 0.0, 1.0);
        c.observe(bucket(), "RCM", 1.0, -3.0);
        assert_eq!(c.ratio(bucket(), "RCM"), 1.0);
    }
}
