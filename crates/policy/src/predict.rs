//! The predictor: per-algorithm SpMV speedup and reorder-cost
//! estimates from cheap order-sensitive features plus the `archsim`
//! cache/DRAM model — before any reordering work runs.
//!
//! Unit discipline: the `archsim` model's absolute seconds describe the
//! paper's machines, not this host, so the predictor only ever uses
//! model **ratios** (how much faster would this matrix be if its
//! x-accesses cached well?) and applies them to *observed* host
//! baselines. Reorder cost likewise comes from live
//! `reorder.<algo>.nnz_per_s` calibration when available, with
//! conservative per-algorithm default rates before the first
//! observation.

use archsim::{machine_by_name, simulate_spmv_1d_opt, Machine, SimOptions};
use engine::AlgoSpec;
use sparsemat::CsrMatrix;
use spfeatures::{bandwidth, off_diagonal_nnz, row_length_variance, x_reuse_estimate};

/// The cheap feature vector one policy decision runs on, computed once
/// per content hash and cached by the policy engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureSummary {
    /// Rows of the (square) matrix.
    pub nrows: usize,
    /// Stored nonzeros.
    pub nnz: usize,
    /// Bandwidth as a fraction of the dimension (0 = diagonal).
    pub bandwidth_fraction: f64,
    /// Fraction of nonzeros outside the diagonal blocks of an 8-way
    /// row split (the edge-cut GP minimises).
    pub off_diag_fraction: f64,
    /// Coefficient of variation of the row lengths (0 = uniform).
    pub row_cv: f64,
    /// Distinct x cache lines touched per nonzero (1.0 = no reuse).
    pub x_reuse: f64,
    /// Model ratio: simulated SpMV seconds at nominal cache size over
    /// seconds with 4x the cache — the upper bound on what *any*
    /// locality improvement can recover on the model machine.
    pub locality_headroom: f64,
}

/// Discretised features — the corrector's residual-learning bucket.
/// Matrices from one corpus family land in the same bucket, so a
/// handful of observations corrects the prediction for the whole
/// family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FeatureBucket {
    /// `log2(nnz) / 2` (size class).
    pub size: u8,
    /// x-reuse quantised to quarters.
    pub reuse: u8,
    /// Row-length skew quantised (0 uniform .. 3 heavy-tailed).
    pub skew: u8,
}

impl FeatureSummary {
    /// The corrector bucket this summary falls into.
    pub fn bucket(&self) -> FeatureBucket {
        let size = (usize::BITS - 1 - self.nnz.max(1).leading_zeros()) as u8 / 2;
        let reuse = ((self.x_reuse * 4.0) as u8).min(3);
        let skew = ((self.row_cv * 2.0) as u8).min(3);
        FeatureBucket { size, reuse, skew }
    }
}

/// Default reorder throughput (nnz/s) per algorithm, used until live
/// `reorder.<algo>.nnz_per_s` calibration arrives. Deliberately
/// conservative (slower than typical) so the cold policy under-commits
/// rather than paying for reorders that never amortise.
///
/// The AMD figure reflects the round-based multiple-elimination
/// implementation measured in `BENCH_PR10.json` (~1.3 Mnnz/s on an
/// R-MAT graph, ~3 Mnnz/s on meshes): the old 6e6 default was
/// optimistic, which made the cold policy *over*-commit to AMD.
pub fn default_nnz_per_s(algo: AlgoSpec) -> f64 {
    match algo {
        AlgoSpec::Original => f64::INFINITY,
        AlgoSpec::Rcm => 20e6,
        AlgoSpec::Gray => 30e6,
        AlgoSpec::Amd => 2e6,
        AlgoSpec::Nd => 1e6,
        AlgoSpec::Gp { .. } => 3e6,
        AlgoSpec::Hp { .. } => 1.5e6,
    }
}

/// Feature-driven speedup/cost prediction against one model machine.
#[derive(Debug, Clone)]
pub struct Predictor {
    machine: Machine,
}

impl Default for Predictor {
    fn default() -> Self {
        Predictor::new()
    }
}

impl Predictor {
    /// A predictor on the default model machine (the paper's Skylake).
    pub fn new() -> Self {
        let machine = machine_by_name("Skylake")
            .or_else(|| archsim::machines().into_iter().next())
            .expect("archsim ships at least one machine");
        Predictor { machine }
    }

    /// A predictor on a specific model machine.
    pub fn with_machine(machine: Machine) -> Self {
        Predictor { machine }
    }

    /// The model machine in use.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The model machine shrunk to the matrix at hand: one socket, a
    /// few threads, and caches capped at twice the x-vector footprint.
    /// A modelled cache larger than the vector it caches produces the
    /// same hit pattern as an infinite one, so the cap preserves the
    /// headroom *ratio* while keeping the simulator's tag-array
    /// allocations proportional to the matrix instead of to a 48-thread
    /// server — summaries run on the serving path, per new matrix.
    fn probe_machine(&self, a: &CsrMatrix) -> Machine {
        let mut m = self.machine.clone();
        let x_kib = (a.ncols() * 8).div_ceil(1024).max(1);
        m.sockets = 1;
        m.threads = 1;
        m.cores_per_socket = 1;
        m.l1d_kib = m.l1d_kib.min(2 * x_kib);
        m.l2_kib = m.l2_kib.min(2 * x_kib);
        m.l3_mib_per_socket = m.l3_mib_per_socket.min((2 * x_kib).div_ceil(1024));
        m
    }

    /// True when the x-vector comfortably fits the model's private L2
    /// at nominal size — then quadrupling the cache cannot change the
    /// hit pattern, the headroom is 1.0 by construction, and the two
    /// trace simulations would be O(nnz) spent confirming it. The
    /// serving path summarises every new matrix, so this early-out
    /// matters.
    fn headroom_is_trivially_one(&self, a: &CsrMatrix) -> bool {
        a.ncols() * 8 <= self.machine.l2_kib * 1024 / 4
    }

    /// Compute the feature summary for one matrix (one O(nnz) pass
    /// plus two cache-model evaluations on the capped probe machine;
    /// no reordering).
    pub fn summarize(&self, a: &CsrMatrix) -> FeatureSummary {
        let n = a.nrows().max(1);
        let nnz = a.nnz();
        let mean_row = nnz as f64 / n as f64;
        let row_cv = if mean_row > 0.0 {
            row_length_variance(a).sqrt() / mean_row
        } else {
            0.0
        };
        let locality_headroom = if self.headroom_is_trivially_one(a) {
            1.0
        } else {
            let probe = self.probe_machine(a);
            let base = simulate_spmv_1d_opt(a, &probe, &SimOptions { cache_scale: 1.0 });
            let roomy = simulate_spmv_1d_opt(a, &probe, &SimOptions { cache_scale: 4.0 });
            if roomy.seconds > 0.0 {
                (base.seconds / roomy.seconds).max(1.0)
            } else {
                1.0
            }
        };
        FeatureSummary {
            nrows: a.nrows(),
            nnz,
            bandwidth_fraction: bandwidth(a) as f64 / n as f64,
            off_diag_fraction: off_diagonal_nnz(a, 8) as f64 / nnz.max(1) as f64,
            row_cv,
            x_reuse: x_reuse_estimate(a),
            locality_headroom,
        }
    }

    /// Predicted SpMV speedup of serving under `algo` instead of the
    /// original order: `1 + recovery · (headroom − 1)`, where
    /// `headroom` is the model's locality ceiling and `recovery` is
    /// how much of that gap the algorithm family can plausibly close
    /// given the current disorder. Always ≥ ~0.95 (reordering rarely
    /// makes SpMV itself much slower; the *cost* is modelled
    /// separately).
    pub fn speedup(&self, f: &FeatureSummary, algo: AlgoSpec) -> f64 {
        if matches!(algo, AlgoSpec::Original) {
            return 1.0;
        }
        // Disorder: how far current x-locality is from "already good".
        // A banded natural-order matrix has low x_reuse and a tiny
        // bandwidth fraction — nothing left to recover (paper Class 4).
        let disorder = ((f.x_reuse - 0.2) / 0.8).clamp(0.0, 1.0);
        let spread = f.bandwidth_fraction.clamp(0.0, 1.0);
        let cut = f.off_diag_fraction.clamp(0.0, 1.0);
        // Family affinity: what fraction of the disorder the family's
        // objective actually targets.
        let affinity = match algo {
            AlgoSpec::Original => 0.0,
            // Bandwidth reducers act on spread-out bands.
            AlgoSpec::Rcm | AlgoSpec::Gray => 0.9 * spread.max(0.15),
            // Partitioners act on the block edge-cut.
            AlgoSpec::Gp { .. } | AlgoSpec::Hp { .. } => 0.9 * cut.max(0.15),
            // Fill-reducing orders help SpMV only incidentally.
            AlgoSpec::Amd | AlgoSpec::Nd => 0.45 * spread.max(cut).max(0.1),
        };
        // Heavy row-length skew caps locality gains: the tail rows
        // dominate regardless of order (paper Class 3/5).
        let skew_damp = 1.0 / (1.0 + f.row_cv);
        let recovery = (disorder * affinity * skew_damp).clamp(0.0, 1.0);
        (1.0 + recovery * (f.locality_headroom - 1.0)).max(0.95)
    }

    /// Predicted wall-clock seconds to compute `algo` on `nnz`
    /// nonzeros, given an optionally calibrated live throughput
    /// (nnz/s) from the `reorder.<algo>.nnz_per_s` gauge.
    pub fn reorder_seconds(&self, nnz: usize, algo: AlgoSpec, calibrated: Option<f64>) -> f64 {
        let rate = calibrated
            .filter(|r| *r > 0.0)
            .unwrap_or_else(|| default_nnz_per_s(algo));
        if rate.is_finite() {
            nnz as f64 / rate
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banded_natural_matrix_predicts_no_gain() {
        let a = corpus::mesh2d(40, 40);
        let p = Predictor::new();
        let f = p.summarize(&a);
        let s = p.speedup(&f, AlgoSpec::Rcm);
        assert!(
            s < 1.15,
            "well-ordered mesh predicted {s:.2}x from RCM (features {f:?})"
        );
    }

    #[test]
    fn scrambled_matrix_predicts_more_than_natural() {
        let a = corpus::mesh2d(60, 60);
        let scrambled = corpus::scramble(&a, 7);
        let p = Predictor::new();
        let natural = p.speedup(&p.summarize(&a), AlgoSpec::Rcm);
        let messy = p.speedup(&p.summarize(&scrambled), AlgoSpec::Rcm);
        assert!(
            messy >= natural,
            "scrambling must not lower the predicted gain ({messy:.3} vs {natural:.3})"
        );
    }

    #[test]
    fn reorder_cost_prefers_calibration() {
        let p = Predictor::new();
        let cold = p.reorder_seconds(1_000_000, AlgoSpec::Rcm, None);
        let hot = p.reorder_seconds(1_000_000, AlgoSpec::Rcm, Some(100e6));
        assert!((cold - 0.05).abs() < 1e-9, "default RCM rate is 20M nnz/s");
        assert!((hot - 0.01).abs() < 1e-9, "calibrated rate wins");
        assert_eq!(p.reorder_seconds(1_000_000, AlgoSpec::Original, None), 0.0);
    }

    #[test]
    fn amd_default_rate_matches_the_round_based_implementation() {
        // Pinned to the BENCH_PR10 measurement of round-based multiple
        // elimination: conservative against the ~1.3–3 Mnnz/s range.
        let p = Predictor::new();
        let cold = p.reorder_seconds(2_000_000, AlgoSpec::Amd, None);
        assert!((cold - 1.0).abs() < 1e-9, "default AMD rate is 2M nnz/s");
        let hot = p.reorder_seconds(2_000_000, AlgoSpec::Amd, Some(4e6));
        assert!((hot - 0.5).abs() < 1e-9, "calibrated AMD rate wins");
    }

    #[test]
    fn buckets_are_stable_and_small() {
        let a = corpus::mesh2d(40, 40);
        let p = Predictor::new();
        let f = p.summarize(&a);
        assert_eq!(f.bucket(), f.bucket());
        assert!(f.bucket().reuse <= 3 && f.bucket().skew <= 3);
    }
}
