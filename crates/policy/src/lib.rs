//! Cost-model-driven adaptive reordering policy with an online
//! amortization feedback loop.
//!
//! The paper's central practical question — *when is reordering worth
//! it?* — depends on three quantities: the one-time reorder cost, the
//! per-SpMV saving the new order buys, and how many times the matrix
//! will be multiplied. This crate decides, per serving request and
//! before any reordering work runs, whether to pay for an ordering:
//!
//! 1. a **predictor** ([`Predictor`]) estimates per-algorithm SpMV
//!    speedup and reorder cost from cheap `spfeatures` metrics plus
//!    `archsim` cache-model *ratios* (never model-absolute seconds);
//! 2. an **amortization ledger** ([`AmortizationLedger`]) tracks, per
//!    cached ordering, the reorder cost actually paid against the
//!    cumulative observed SpMV savings, published as `policy.*`
//!    telemetry;
//! 3. an **online corrector** ([`OnlineCorrector`]) blends predicted
//!    and observed speedups per feature bucket, so repeated traffic
//!    converges on the empirically best choice — including "don't
//!    reorder at all".
//!
//! [`PolicyEngine::decide`] runs the cascade; the serving tier records
//! its output as the `policy.decide` flight-recorder stage.

mod corrector;
mod ledger;
mod predict;

use std::collections::HashMap;
use std::str::FromStr;
use std::sync::{Arc, Mutex};

use engine::AlgoSpec;
use sparsemat::CsrMatrix;
use telemetry::Registry;

pub use corrector::OnlineCorrector;
pub use ledger::{AmortizationLedger, Observed};
pub use predict::{default_nnz_per_s, FeatureBucket, FeatureSummary, Predictor};

/// How the serving tier treats reorder requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyMode {
    /// Honour every requested reordering (the pre-policy behaviour).
    Always,
    /// Serve everything in the original order.
    Never,
    /// Reorder only when the cost model and the feedback loop say the
    /// investment will amortise.
    Adaptive,
}

impl PolicyMode {
    /// Stable lowercase token (CLI flag value, trace span arg).
    pub fn as_str(&self) -> &'static str {
        match self {
            PolicyMode::Always => "always",
            PolicyMode::Never => "never",
            PolicyMode::Adaptive => "adaptive",
        }
    }
}

impl FromStr for PolicyMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "always" => Ok(PolicyMode::Always),
            "never" => Ok(PolicyMode::Never),
            "adaptive" => Ok(PolicyMode::Adaptive),
            other => Err(format!(
                "unknown policy mode '{other}' (expected always|never|adaptive)"
            )),
        }
    }
}

/// Tunables for the adaptive policy.
#[derive(Clone)]
pub struct PolicyConfig {
    /// Decision mode.
    pub mode: PolicyMode,
    /// Deterministic probe point: once a key has been requested this
    /// many times without reordered-side observations, reorder once so
    /// the ledger and corrector get data. Keys with fewer lifetime
    /// repetitions never pay (the cold-traffic guarantee).
    pub probe_after: u64,
    /// Observations per side required before empirical means override
    /// the model.
    pub min_samples: u64,
    /// Predicted speedup must clear `1 + margin` before the model may
    /// recommend paying for a reorder.
    pub speedup_margin: f64,
    /// Metrics sink; defaults to the process-global registry.
    pub registry: Option<Arc<Registry>>,
}

impl std::fmt::Debug for PolicyConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicyConfig")
            .field("mode", &self.mode)
            .field("probe_after", &self.probe_after)
            .field("min_samples", &self.min_samples)
            .field("speedup_margin", &self.speedup_margin)
            .finish_non_exhaustive()
    }
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            mode: PolicyMode::Adaptive,
            probe_after: 8,
            min_samples: 2,
            speedup_margin: 0.02,
            registry: None,
        }
    }
}

/// The outcome of one policy decision.
#[derive(Debug, Clone, Copy)]
pub struct PolicyDecision {
    /// Algorithm to actually serve under (`Original` = don't reorder).
    pub algo: AlgoSpec,
    /// Model-predicted SpMV speedup of the chosen path vs original
    /// order (1.0 for identity decisions).
    pub predicted_speedup: f64,
    /// Model-predicted one-time reorder cost of `algo`, seconds.
    pub predicted_reorder_seconds: f64,
    /// Repetitions needed to amortise that cost (0 when not computed).
    pub break_even_reps: f64,
    /// Which cascade rule fired — recorded on the `policy.decide` span.
    pub reason: &'static str,
}

impl PolicyDecision {
    /// True when the decision is to serve a reordered matrix.
    pub fn reorders(&self) -> bool {
        !matches!(self.algo, AlgoSpec::Original)
    }

    fn identity(reason: &'static str) -> Self {
        PolicyDecision {
            algo: AlgoSpec::Original,
            predicted_speedup: 1.0,
            predicted_reorder_seconds: 0.0,
            break_even_reps: 0.0,
            reason,
        }
    }
}

/// The policy engine: one per serving tier, shared across shards.
pub struct PolicyEngine {
    config: PolicyConfig,
    registry: Arc<Registry>,
    predictor: Predictor,
    ledger: AmortizationLedger,
    corrector: OnlineCorrector,
    /// Feature summaries cached per content hash — computed once, on
    /// the first adaptive decision for a matrix.
    features: Mutex<HashMap<u128, FeatureSummary>>,
    /// Last empirical choice per key (true = serving reordered), for
    /// hysteresis: flipping the served matrix every request also flips
    /// which image is hot in the host caches, which pins both observed
    /// means to the decision boundary and makes a memoryless rule
    /// oscillate. A switch must clear the far edge of the deadband.
    empirical_choice: Mutex<HashMap<(u128, AlgoSpec), bool>>,
}

impl PolicyEngine {
    /// Build an engine from `config`.
    pub fn new(config: PolicyConfig) -> Self {
        let registry = config.registry.clone().unwrap_or_else(Registry::global);
        PolicyEngine {
            predictor: Predictor::new(),
            ledger: AmortizationLedger::new(Arc::clone(&registry)),
            corrector: OnlineCorrector::new(0.3, Arc::clone(&registry)),
            registry,
            config,
            features: Mutex::new(HashMap::new()),
            empirical_choice: Mutex::new(HashMap::new()),
        }
    }

    /// The configured mode.
    pub fn mode(&self) -> PolicyMode {
        self.config.mode
    }

    /// The amortization ledger (for reporting).
    pub fn ledger(&self) -> &AmortizationLedger {
        &self.ledger
    }

    /// The predictor in use.
    pub fn predictor(&self) -> &Predictor {
        &self.predictor
    }

    /// The online corrector (for reporting).
    pub fn corrector(&self) -> &OnlineCorrector {
        &self.corrector
    }

    /// Decide whether this request should be served under `requested`
    /// or in the original order. `ordering_cached` reports whether the
    /// engine already holds a computed ordering for (matrix,
    /// requested) — a sunk cost the adaptive mode should exploit
    /// rather than re-litigate.
    pub fn decide(
        &self,
        matrix: &CsrMatrix,
        content_hash: u128,
        requested: AlgoSpec,
        ordering_cached: bool,
    ) -> PolicyDecision {
        let decision = self.decide_inner(matrix, content_hash, requested, ordering_cached);
        let choice = if decision.reorders() {
            "reorder"
        } else {
            "identity"
        };
        self.registry
            .counter_labeled("policy.decisions", &[("choice", choice)])
            .inc();
        self.registry
            .counter_labeled("policy.reason", &[("rule", decision.reason)])
            .inc();
        decision
    }

    /// True when `count` lands on the exponential re-probe schedule:
    /// `probe_after · 2^k` for k ≥ 1 (the k = 0 slot is the initial
    /// probe).
    fn on_reprobe_schedule(&self, count: u64) -> bool {
        let first = self.config.probe_after.max(1);
        let mut slot = first.saturating_mul(2);
        while slot < count {
            slot = slot.saturating_mul(2);
        }
        slot == count
    }

    fn decide_inner(
        &self,
        matrix: &CsrMatrix,
        content_hash: u128,
        requested: AlgoSpec,
        ordering_cached: bool,
    ) -> PolicyDecision {
        if matches!(requested, AlgoSpec::Original) {
            return PolicyDecision::identity("requested-original");
        }
        match self.config.mode {
            PolicyMode::Always => {
                self.ledger.note_request(content_hash, requested);
                return PolicyDecision {
                    algo: requested,
                    predicted_speedup: 1.0,
                    predicted_reorder_seconds: 0.0,
                    break_even_reps: 0.0,
                    reason: "mode-always",
                };
            }
            PolicyMode::Never => {
                self.ledger.note_request(content_hash, requested);
                return PolicyDecision::identity("mode-never");
            }
            PolicyMode::Adaptive => {}
        }

        let count = self.ledger.note_request(content_hash, requested);
        let summary = self.summary_for(content_hash, matrix);
        let bucket = summary.bucket();
        let raw = self.predictor.speedup(&summary, requested);
        let predicted = self.corrector.correct(bucket, requested.name(), raw);
        let cost =
            self.predictor
                .reorder_seconds(summary.nnz, requested, self.calibrated_rate(requested));

        let observed = self.ledger.observed(content_hash, requested);
        let baseline = self.ledger.observed(content_hash, AlgoSpec::Original);

        // 1. Enough live data on both sides: the means decide, with
        //    hysteresis. A fresh verdict must clear the margin; an
        //    established one only flips when the ratio crosses the far
        //    edge of the deadband — otherwise noise on near-tie
        //    matrices (and the cache perturbation of the flip itself)
        //    oscillates the served ordering every request.
        if observed.count >= self.config.min_samples && baseline.count >= self.config.min_samples {
            let (om, bm) = (observed.mean().unwrap(), baseline.mean().unwrap());
            let key = (content_hash, requested);
            let ratio = bm / om;
            let margin = self.config.speedup_margin;
            let win = match self.empirical_choice.lock().unwrap().get(&key) {
                Some(true) => ratio >= 1.0 - margin,
                Some(false) => ratio > 1.0 + margin,
                None => ratio > 1.0 + margin,
            };
            // A losing verdict freezes the reordered side's sample
            // stream (the tier serves the original ordering), so two
            // early noise-polluted samples could condemn a genuinely
            // winning ordering forever. Re-probe on an exponential
            // schedule — request counts probe_after·2^k — discarding
            // the distrusted samples so a fresh verdict forms from
            // current evidence; a true loss is re-condemned within
            // `min_samples` serves at geometrically decaying cost.
            if !win && self.on_reprobe_schedule(count) {
                self.ledger.reset_observed(content_hash, requested);
                self.empirical_choice.lock().unwrap().remove(&key);
                self.registry.counter("policy.reprobes").inc();
                return PolicyDecision {
                    algo: requested,
                    predicted_speedup: predicted,
                    predicted_reorder_seconds: cost,
                    break_even_reps: 0.0,
                    reason: "re-probe",
                };
            }
            self.empirical_choice.lock().unwrap().insert(key, win);
            return if win {
                PolicyDecision {
                    algo: requested,
                    predicted_speedup: ratio,
                    predicted_reorder_seconds: cost,
                    break_even_reps: 0.0,
                    reason: "empirical-win",
                }
            } else {
                PolicyDecision::identity("empirical-loss")
            };
        }

        // 2. An ordering the engine already computed is a sunk cost:
        //    serving under it costs nothing extra.
        if ordering_cached {
            return PolicyDecision {
                algo: requested,
                predicted_speedup: predicted,
                predicted_reorder_seconds: 0.0,
                break_even_reps: 0.0,
                reason: "cached-ordering",
            };
        }

        // 3. Deterministic probe: a key that keeps coming back earns
        //    one reorder so the feedback loop gets reordered-side data.
        if count >= self.config.probe_after && observed.count < self.config.min_samples {
            self.registry.counter("policy.probes").inc();
            return PolicyDecision {
                algo: requested,
                predicted_speedup: predicted,
                predicted_reorder_seconds: cost,
                break_even_reps: 0.0,
                reason: "probe",
            };
        }

        // 4. Model decision: pay only when the predicted saving clears
        //    the break-even point within the repetitions seen so far
        //    (count is the best available proxy for future traffic).
        if predicted > 1.0 + self.config.speedup_margin {
            if let Some(base_mean) = baseline.mean() {
                let saving_frac = 1.0 - 1.0 / predicted;
                let break_even = cost / (base_mean * saving_frac);
                if count as f64 >= break_even {
                    return PolicyDecision {
                        algo: requested,
                        predicted_speedup: predicted,
                        predicted_reorder_seconds: cost,
                        break_even_reps: break_even,
                        reason: "predicted-amortized",
                    };
                }
                let mut d = PolicyDecision::identity("below-break-even");
                d.predicted_speedup = predicted;
                d.predicted_reorder_seconds = cost;
                d.break_even_reps = break_even;
                return d;
            }
            // No host baseline yet: serve original once to measure it.
            return PolicyDecision::identity("await-baseline");
        }
        PolicyDecision::identity("no-gain-predicted")
    }

    /// Feed one observed SpMV service time (seconds) for (hash, algo)
    /// back into the ledger, and — once both sides of a matrix have
    /// data — into the corrector's residual for the matrix's bucket.
    pub fn observe_spmv(&self, content_hash: u128, algo: AlgoSpec, seconds: f64) {
        self.ledger.record_spmv(content_hash, algo, seconds);
        if matches!(algo, AlgoSpec::Original) {
            return;
        }
        let observed = self.ledger.observed(content_hash, algo);
        let baseline = self.ledger.observed(content_hash, AlgoSpec::Original);
        if observed.count < self.config.min_samples || baseline.count < self.config.min_samples {
            return;
        }
        let summary = match self.features.lock().unwrap().get(&content_hash) {
            Some(s) => *s,
            None => return,
        };
        let (om, bm) = (observed.mean().unwrap(), baseline.mean().unwrap());
        if om > 0.0 {
            let raw = self.predictor.speedup(&summary, algo);
            self.corrector
                .observe(summary.bucket(), algo.name(), raw, bm / om);
        }
    }

    /// Record that the reorder cost for (hash, algo) was actually paid
    /// (`seconds` of wall clock, from the engine's ordering).
    pub fn record_reorder_paid(&self, content_hash: u128, algo: AlgoSpec, seconds: f64) {
        self.ledger.record_reorder_paid(content_hash, algo, seconds);
    }

    /// Net seconds the policy's paid orderings have saved so far
    /// (refreshes the `policy.ledger.*` gauges).
    pub fn net_saved_seconds(&self) -> f64 {
        self.ledger.net_saved_seconds()
    }

    /// The policy's best current estimate of the amortisation
    /// question: would paying for `algo` on this matrix pay off over
    /// `reps` repetitions of traffic? Uses observed per-SpMV means
    /// when both sides have [`PolicyConfig::min_samples`], otherwise
    /// the (corrector-adjusted) predicted speedup; the cost is the
    /// price actually paid if one was, else the model estimate.
    /// `None` until a baseline mean and a feature summary exist.
    pub fn would_amortize(&self, content_hash: u128, algo: AlgoSpec, reps: u64) -> Option<bool> {
        if matches!(algo, AlgoSpec::Original) {
            return Some(false);
        }
        let baseline = self.ledger.observed(content_hash, AlgoSpec::Original);
        let observed = self.ledger.observed(content_hash, algo);
        let base_mean = baseline.mean()?;
        let summary = self.features.lock().unwrap().get(&content_hash).copied()?;
        let cost = self.ledger.paid_for(content_hash, algo).unwrap_or_else(|| {
            self.predictor
                .reorder_seconds(summary.nnz, algo, self.calibrated_rate(algo))
        });
        let saving = if observed.count >= self.config.min_samples
            && baseline.count >= self.config.min_samples
        {
            base_mean - observed.mean().unwrap()
        } else {
            let raw = self.predictor.speedup(&summary, algo);
            let predicted = self.corrector.correct(summary.bucket(), algo.name(), raw);
            base_mean * (1.0 - 1.0 / predicted)
        };
        if saving <= 0.0 {
            return Some(false);
        }
        Some(reps as f64 * saving > cost)
    }

    fn summary_for(&self, content_hash: u128, matrix: &CsrMatrix) -> FeatureSummary {
        if let Some(s) = self.features.lock().unwrap().get(&content_hash) {
            return *s;
        }
        let summary = self.predictor.summarize(matrix);
        self.features.lock().unwrap().insert(content_hash, summary);
        self.registry
            .gauge("policy.features.cached")
            .set(self.features.lock().unwrap().len() as i64);
        summary
    }

    /// Live reorder throughput (nnz/s) for `algo`, calibrated from the
    /// `reorder.<algo>.nnz_per_s` gauge the reorder crate publishes.
    fn calibrated_rate(&self, algo: AlgoSpec) -> Option<f64> {
        let name = format!("reorder.{}.nnz_per_s", algo.name().to_lowercase());
        self.registry
            .find_gauge(&name)
            .map(|g| g.get() as f64)
            .filter(|r| *r > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(mode: PolicyMode) -> (PolicyEngine, Arc<Registry>) {
        let registry = Arc::new(Registry::new());
        let config = PolicyConfig {
            mode,
            registry: Some(Arc::clone(&registry)),
            ..PolicyConfig::default()
        };
        (PolicyEngine::new(config), registry)
    }

    fn matrix() -> CsrMatrix {
        corpus::scramble(&corpus::mesh2d(48, 48), 3)
    }

    #[test]
    fn always_and_never_are_unconditional() {
        let a = matrix();
        let (always, _) = engine(PolicyMode::Always);
        let d = always.decide(&a, 1, AlgoSpec::Rcm, false);
        assert_eq!(d.algo, AlgoSpec::Rcm);
        assert_eq!(d.reason, "mode-always");

        let (never, _) = engine(PolicyMode::Never);
        let d = never.decide(&a, 1, AlgoSpec::Rcm, true);
        assert!(!d.reorders());
        assert_eq!(d.reason, "mode-never");
    }

    #[test]
    fn adaptive_cold_key_never_pays_below_probe_threshold() {
        let a = matrix();
        let (policy, _) = engine(PolicyMode::Adaptive);
        for i in 1..8 {
            let d = policy.decide(&a, 42, AlgoSpec::Rcm, false);
            assert!(!d.reorders(), "request {i} reordered ({})", d.reason);
            // The tier serves in original order and reports the time.
            policy.observe_spmv(42, AlgoSpec::Original, 0.001);
        }
    }

    #[test]
    fn adaptive_probes_at_the_threshold_then_follows_the_evidence() {
        let a = matrix();
        let (policy, _) = engine(PolicyMode::Adaptive);
        for _ in 1..8 {
            assert!(!policy.decide(&a, 7, AlgoSpec::Rcm, false).reorders());
            policy.observe_spmv(7, AlgoSpec::Original, 0.004);
        }
        // 8th request probes.
        let d = policy.decide(&a, 7, AlgoSpec::Rcm, false);
        assert_eq!(d.reason, "probe");
        assert!(d.reorders());
        policy.record_reorder_paid(7, AlgoSpec::Rcm, 0.050);
        // First reordered sample is warm-up (discarded by the ledger).
        policy.observe_spmv(7, AlgoSpec::Rcm, 0.009);
        // Still below min_samples on the reordered side: cached
        // ordering keeps serving (sunk cost).
        let d = policy.decide(&a, 7, AlgoSpec::Rcm, true);
        assert_eq!(d.reason, "cached-ordering");
        policy.observe_spmv(7, AlgoSpec::Rcm, 0.002);
        let d = policy.decide(&a, 7, AlgoSpec::Rcm, true);
        assert_eq!(d.reason, "cached-ordering");
        policy.observe_spmv(7, AlgoSpec::Rcm, 0.002);
        // Both sides sampled: the 2x-faster reordered path wins.
        let d = policy.decide(&a, 7, AlgoSpec::Rcm, true);
        assert_eq!(d.reason, "empirical-win");
        assert!(d.predicted_speedup > 1.5);
    }

    #[test]
    fn adaptive_abandons_a_losing_reordering() {
        let a = matrix();
        let (policy, _) = engine(PolicyMode::Adaptive);
        policy.decide(&a, 9, AlgoSpec::Nd, false);
        // Observations say ND made SpMV slower on this matrix.
        for _ in 0..3 {
            policy.observe_spmv(9, AlgoSpec::Original, 0.002);
            policy.observe_spmv(9, AlgoSpec::Nd, 0.003);
        }
        let d = policy.decide(&a, 9, AlgoSpec::Nd, true);
        assert_eq!(d.reason, "empirical-loss");
        assert!(!d.reorders());
    }

    #[test]
    fn reprobe_recovers_from_a_noise_polluted_verdict() {
        let a = matrix();
        let (policy, _) = engine(PolicyMode::Adaptive);
        // Early samples falsely condemn RCM (polluted: 6ms vs 4ms).
        for _ in 0..3 {
            policy.observe_spmv(7, AlgoSpec::Original, 0.004);
            policy.observe_spmv(7, AlgoSpec::Rcm, 0.006);
        }
        // Requests 1..=15: the loss verdict holds and the reordered
        // side gets no new samples — without re-probing, forever.
        for _ in 1..16 {
            let d = policy.decide(&a, 7, AlgoSpec::Rcm, true);
            assert_eq!(d.reason, "empirical-loss");
        }
        // Request 16 = probe_after·2: exponential re-probe fires,
        // discarding the distrusted samples.
        let d = policy.decide(&a, 7, AlgoSpec::Rcm, true);
        assert_eq!(d.reason, "re-probe");
        assert!(d.reorders());
        // Fresh evidence shows the ordering actually wins 2x.
        policy.observe_spmv(7, AlgoSpec::Rcm, 0.002);
        let d = policy.decide(&a, 7, AlgoSpec::Rcm, true);
        assert_eq!(d.reason, "cached-ordering");
        policy.observe_spmv(7, AlgoSpec::Rcm, 0.002);
        let d = policy.decide(&a, 7, AlgoSpec::Rcm, true);
        assert_eq!(d.reason, "empirical-win");
    }

    #[test]
    fn amd_reorder_cost_reads_the_live_gauge() {
        let a = matrix();
        let (policy, registry) = engine(PolicyMode::Adaptive);
        let nnz = a.nnz() as f64;
        // Drive the key to the probe threshold with no calibration
        // yet: the probe prices AMD at the conservative default rate.
        for _ in 1..8 {
            policy.decide(&a, 11, AlgoSpec::Amd, false);
            policy.observe_spmv(11, AlgoSpec::Original, 0.004);
        }
        let cold = policy.decide(&a, 11, AlgoSpec::Amd, false);
        assert_eq!(cold.reason, "probe");
        let want = nnz / default_nnz_per_s(AlgoSpec::Amd);
        assert!(
            (cold.predicted_reorder_seconds - want).abs() < 1e-12,
            "cold AMD cost {} != default-rate cost {want}",
            cold.predicted_reorder_seconds
        );

        // Once the reorder crate publishes a live throughput (the
        // `reorder.amd.nnz_per_s` gauge from `timed_permutation_on`),
        // the next pricing uses it instead of the default.
        registry.gauge("reorder.amd.nnz_per_s").set(8_000_000);
        let hot = policy.decide(&a, 11, AlgoSpec::Amd, false);
        assert_eq!(hot.reason, "probe");
        let want = nnz / 8e6;
        assert!(
            (hot.predicted_reorder_seconds - want).abs() < 1e-12,
            "calibrated AMD cost {} != gauge-rate cost {want}",
            hot.predicted_reorder_seconds
        );
    }

    #[test]
    fn decisions_are_counted_in_telemetry() {
        let a = matrix();
        let (policy, registry) = engine(PolicyMode::Adaptive);
        policy.decide(&a, 5, AlgoSpec::Rcm, false);
        let snap = registry.snapshot();
        let identity = snap
            .counter_labeled("policy.decisions", &[("choice", "identity")])
            .unwrap_or(0);
        assert_eq!(identity, 1);
    }

    #[test]
    fn mode_parses_from_cli_tokens() {
        assert_eq!("always".parse::<PolicyMode>().unwrap(), PolicyMode::Always);
        assert_eq!("never".parse::<PolicyMode>().unwrap(), PolicyMode::Never);
        assert_eq!(
            "adaptive".parse::<PolicyMode>().unwrap(),
            PolicyMode::Adaptive
        );
        assert!("sometimes".parse::<PolicyMode>().is_err());
        assert_eq!(PolicyMode::Adaptive.as_str(), "adaptive");
    }
}
