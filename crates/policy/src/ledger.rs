//! The amortization ledger: per cached ordering (`content_hash` ×
//! algorithm), what reorder cost was paid once and how much cumulative
//! SpMV time the ordering has saved since, relative to the observed
//! `Original` baseline for the same matrix.
//!
//! The ledger is the policy layer's ground truth — the predictor only
//! seeds decisions until enough observations land here.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use engine::AlgoSpec;
use telemetry::Registry;

/// Running mean of observed per-SpMV service seconds for one
/// (matrix, algorithm) pair.
#[derive(Debug, Clone, Copy, Default)]
pub struct Observed {
    /// Number of SpMV executions observed.
    pub count: u64,
    /// Total observed seconds across those executions.
    pub total_seconds: f64,
}

impl Observed {
    /// Mean seconds per SpMV, or `None` before the first observation.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.total_seconds / self.count as f64)
    }
}

#[derive(Debug, Default)]
struct Entry {
    /// Requests routed to this (hash, algo) key, whatever was served.
    requests: u64,
    /// One-time reorder cost, recorded when the ordering was computed.
    paid_reorder_seconds: f64,
    reorder_paid: bool,
    /// The first SpMV sample per key is discarded as warm-up: it runs
    /// against cold caches (freshly built prepared matrix and plan)
    /// and would poison the steady-state mean the policy compares.
    warmup_dropped: bool,
    observed: Observed,
}

/// Thread-safe ledger keyed by (`content_hash`, algorithm).
///
/// Telemetry (all under `policy.ledger.*`): `keys` gauge (distinct
/// ledger keys), `paid_us` gauge (cumulative reorder cost paid),
/// `net_saved_us` gauge (estimated SpMV seconds saved minus cost,
/// refreshed by [`AmortizationLedger::net_saved_seconds`]).
pub struct AmortizationLedger {
    entries: Mutex<HashMap<(u128, AlgoSpec), Entry>>,
    registry: Arc<Registry>,
}

impl AmortizationLedger {
    /// A new empty ledger publishing into `registry`.
    pub fn new(registry: Arc<Registry>) -> Self {
        AmortizationLedger {
            entries: Mutex::new(HashMap::new()),
            registry,
        }
    }

    /// Count one request for (hash, algo) and return the new total.
    /// The count drives the deterministic probe schedule.
    pub fn note_request(&self, hash: u128, algo: AlgoSpec) -> u64 {
        let mut entries = self.entries.lock().unwrap();
        let entry = entries.entry((hash, algo)).or_default();
        entry.requests += 1;
        entry.requests
    }

    /// Requests seen so far for (hash, algo).
    pub fn requests(&self, hash: u128, algo: AlgoSpec) -> u64 {
        self.entries
            .lock()
            .unwrap()
            .get(&(hash, algo))
            .map_or(0, |e| e.requests)
    }

    /// Record the one-time reorder cost for (hash, algo). Only the
    /// first call per key counts (subsequent prepared-cache rebuilds
    /// reuse the engine's cached permutation, and re-recording would
    /// double-bill the policy). Returns `true` on first payment.
    pub fn record_reorder_paid(&self, hash: u128, algo: AlgoSpec, seconds: f64) -> bool {
        let first = {
            let mut entries = self.entries.lock().unwrap();
            let entry = entries.entry((hash, algo)).or_default();
            if entry.reorder_paid {
                false
            } else {
                entry.reorder_paid = true;
                entry.paid_reorder_seconds = seconds;
                true
            }
        };
        if first {
            self.registry.counter("policy.ledger.reorders_paid").inc();
            self.refresh_gauges();
        }
        first
    }

    /// Record one observed SpMV execution under (hash, algo). The
    /// first sample per key is discarded as warm-up (cold prepared
    /// matrix, cold plan — the same reasoning as `MeasureConfig`'s
    /// warm-up iterations); steady-state samples accumulate.
    pub fn record_spmv(&self, hash: u128, algo: AlgoSpec, seconds: f64) {
        let mut entries = self.entries.lock().unwrap();
        let entry = entries.entry((hash, algo)).or_default();
        if !entry.warmup_dropped {
            entry.warmup_dropped = true;
            return;
        }
        entry.observed.count += 1;
        entry.observed.total_seconds += seconds;
    }

    /// Discard the accumulated SpMV samples for (hash, algo), keeping
    /// the request count and paid reorder cost. Used by the policy's
    /// re-probe path: a losing verdict freezes the reordered side's
    /// sample stream, so recovery starts from distrusting the old
    /// samples. The warm-up discard is *not* re-armed — the prepared
    /// state this key runs on is long since warm.
    pub fn reset_observed(&self, hash: u128, algo: AlgoSpec) {
        if let Some(entry) = self.entries.lock().unwrap().get_mut(&(hash, algo)) {
            entry.observed = Observed::default();
        }
    }

    /// Observed per-SpMV statistics for (hash, algo).
    pub fn observed(&self, hash: u128, algo: AlgoSpec) -> Observed {
        self.entries
            .lock()
            .unwrap()
            .get(&(hash, algo))
            .map_or(Observed::default(), |e| e.observed)
    }

    /// Number of distinct (hash, algo) keys tracked.
    pub fn keys(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// The one-time reorder cost actually paid for (hash, algo), or
    /// `None` if no reorder has been billed to this key yet.
    pub fn paid_for(&self, hash: u128, algo: AlgoSpec) -> Option<f64> {
        self.entries
            .lock()
            .unwrap()
            .get(&(hash, algo))
            .filter(|e| e.reorder_paid)
            .map(|e| e.paid_reorder_seconds)
    }

    /// Cumulative reorder seconds paid across all keys.
    pub fn paid_seconds(&self) -> f64 {
        self.entries
            .lock()
            .unwrap()
            .values()
            .map(|e| e.paid_reorder_seconds)
            .sum()
    }

    /// Net benefit of every paid ordering: for each (hash, algo ≠
    /// Original) with an observed `Original` baseline for the same
    /// hash, `count · (baseline_mean − algo_mean) − paid_cost`.
    /// Positive means the reordering investment has amortised.
    /// Refreshes the `policy.ledger.*` gauges as a side effect.
    pub fn net_saved_seconds(&self) -> f64 {
        let net = {
            let entries = self.entries.lock().unwrap();
            let mut net = 0.0;
            for ((hash, algo), entry) in entries.iter() {
                if matches!(algo, AlgoSpec::Original) || !entry.reorder_paid {
                    continue;
                }
                let baseline = entries
                    .get(&(*hash, AlgoSpec::Original))
                    .and_then(|b| b.observed.mean());
                if let (Some(base), Some(mine)) = (baseline, entry.observed.mean()) {
                    net += entry.observed.count as f64 * (base - mine);
                }
                net -= entry.paid_reorder_seconds;
            }
            net
        };
        self.refresh_gauges();
        self.registry
            .gauge("policy.ledger.net_saved_us")
            .set((net * 1e6) as i64);
        net
    }

    /// Cumulative SpMV seconds the serving tier has spent, read
    /// straight from the shared `serve.spmv` duration histogram (no
    /// export parsing) — the denominator for amortization reporting.
    pub fn tier_spmv_seconds(&self) -> f64 {
        self.registry
            .find_histogram("serve.spmv")
            .map_or(0.0, |h| h.sum_seconds())
    }

    fn refresh_gauges(&self) {
        self.registry
            .gauge("policy.ledger.keys")
            .set(self.keys() as i64);
        self.registry
            .gauge("policy.ledger.paid_us")
            .set((self.paid_seconds() * 1e6) as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const H: u128 = 0xfeed_f00d;

    #[test]
    fn reorder_cost_is_paid_once() {
        let ledger = AmortizationLedger::new(Arc::new(Registry::new()));
        assert!(ledger.record_reorder_paid(H, AlgoSpec::Rcm, 2.0));
        assert!(!ledger.record_reorder_paid(H, AlgoSpec::Rcm, 5.0));
        assert!((ledger.paid_seconds() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn net_savings_need_a_baseline_and_amortise_over_reps() {
        let registry = Arc::new(Registry::new());
        let ledger = AmortizationLedger::new(Arc::clone(&registry));
        ledger.record_reorder_paid(H, AlgoSpec::Rcm, 0.010);
        for _ in 0..11 {
            ledger.record_spmv(H, AlgoSpec::Original, 0.004);
            ledger.record_spmv(H, AlgoSpec::Rcm, 0.002);
        }
        // The first sample per side is warm-up and discarded, leaving
        // 10 counted reps * 2ms saved - 10ms paid = +10ms.
        let net = ledger.net_saved_seconds();
        assert!((net - 0.010).abs() < 1e-9, "net was {net}");
        let snap = registry.snapshot();
        let published = snap
            .gauge("policy.ledger.net_saved_us")
            .expect("net gauge published");
        assert!((published - 10_000).abs() <= 1, "gauge was {published}");
    }

    #[test]
    fn request_counts_accumulate_per_key() {
        let ledger = AmortizationLedger::new(Arc::new(Registry::new()));
        assert_eq!(ledger.note_request(H, AlgoSpec::Rcm), 1);
        assert_eq!(ledger.note_request(H, AlgoSpec::Rcm), 2);
        assert_eq!(ledger.note_request(H, AlgoSpec::Amd), 1);
        assert_eq!(ledger.requests(H, AlgoSpec::Rcm), 2);
        assert_eq!(ledger.keys(), 2);
    }
}
