use crate::cache::{CacheSim, LINE_BYTES};
use crate::machines::Machine;
use sparsemat::CsrMatrix;
use spmv::{imbalance_factor, Plan1d, Plan2d};

/// Fraction of each cache level usable by the `x` vector; the rest is
/// occupied by the streaming matrix data competing for the same sets.
const X_CACHE_FRACTION: f64 = 0.5;

/// Bytes streamed per nonzero: an 8-byte value plus a 4-byte column
/// index (§4.1's storage convention).
pub const BYTES_PER_NNZ: f64 = 12.0;

/// Bytes streamed per row: the row pointer (8) plus the `y` write,
/// which costs a write-allocate read + writeback (16).
pub const BYTES_PER_ROW: f64 = 24.0;

/// Result of simulating one SpMV execution.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Modelled execution time of one SpMV iteration, seconds.
    pub seconds: f64,
    /// Modelled performance in Gflop/s (`2·nnz / time`).
    pub gflops: f64,
    /// Per-thread modelled times, seconds.
    pub thread_seconds: Vec<f64>,
    /// Per-thread nonzero counts (the §3.2 imbalance inputs).
    pub thread_nnz: Vec<usize>,
    /// Load imbalance factor (max/mean nonzeros per thread).
    pub imbalance: f64,
    /// Total modelled DRAM traffic, bytes.
    pub dram_bytes: f64,
}

impl SimResult {
    fn from_threads(
        nnz_total: usize,
        thread_seconds: Vec<f64>,
        thread_nnz: Vec<usize>,
        dram_bytes: f64,
    ) -> SimResult {
        let seconds = thread_seconds
            .iter()
            .copied()
            .fold(0.0f64, f64::max)
            .max(1e-12);
        SimResult {
            seconds,
            gflops: 2.0 * nnz_total as f64 / seconds / 1e9,
            imbalance: imbalance_factor(&thread_nnz),
            thread_seconds,
            thread_nnz,
            dram_bytes,
        }
    }
}

/// Simulation options.
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    /// Scale factor applied to all cache capacities.
    ///
    /// The synthetic corpus is smaller than the paper's matrices
    /// (median ≈ 5 M nonzeros); simulating with full-size caches would
    /// let every per-thread working set fit and overstate locality
    /// gains. Scaling the caches by the same factor as the matrices
    /// preserves the footprint-to-capacity ratios of the real study —
    /// the standard scaled-working-set methodology.
    pub cache_scale: f64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions { cache_scale: 1.0 }
    }
}

/// Per-thread private caches used for the `x` access stream; the L3 is
/// shared per socket and passed in separately.
struct PrivateCaches {
    l1: CacheSim,
    l2: CacheSim,
}

impl PrivateCaches {
    fn new(m: &Machine, scale: f64) -> PrivateCaches {
        PrivateCaches {
            l1: CacheSim::new(
                (m.l1d_kib as f64 * 1024.0 * X_CACHE_FRACTION * scale) as usize,
                8,
            ),
            l2: CacheSim::new(
                (m.l2_kib as f64 * 1024.0 * X_CACHE_FRACTION * scale) as usize,
                8,
            ),
        }
    }

    /// Feed one x access (by column index); returns true if it reached
    /// DRAM. The L3 is *shared*: the first thread on a socket to touch
    /// a line pays the DRAM fetch, subsequent threads hit in L3 — which
    /// is what bounds the cost of locality-poor orderings on real
    /// machines (the whole vector is resident after one pass as long as
    /// it fits the socket L3).
    #[inline]
    fn access(&mut self, col: u32, l3: &mut CacheSim) -> bool {
        let line = (col as u64 * 8) / LINE_BYTES as u64;
        if self.l1.access(line) {
            return false;
        }
        if self.l2.access(line) {
            return false;
        }
        !l3.access(line)
    }
}

/// One shared L3 per socket.
fn socket_l3s(m: &Machine, scale: f64) -> Vec<CacheSim> {
    let bytes = (m.l3_mib_per_socket as f64 * 1024.0 * 1024.0 * X_CACHE_FRACTION * scale) as usize;
    (0..m.sockets).map(|_| CacheSim::new(bytes, 16)).collect()
}

/// Matrix stream bandwidth: if the whole CSR image fits in aggregate
/// L3, the matrix streams from L3 at a higher rate than DRAM.
fn matrix_stream_bw(m: &Machine, a: &CsrMatrix, active_threads: usize, scale: f64) -> f64 {
    let resident = a.csr_bytes() as f64 <= 0.8 * m.l3_total_bytes() as f64 * scale;
    let dram = m.effective_bw_gbs(active_threads);
    if resident {
        dram * 2.5
    } else {
        dram
    }
}

/// Model one thread's time from its nonzero/row workload and its
/// x-vector DRAM line misses, split into local- and remote-socket
/// lines (first-touch NUMA, §3.1: "we use the first-touch policy to
/// ensure that the data is placed close to the core using it").
#[allow(clippy::too_many_arguments)]
fn thread_time(
    m: &Machine,
    active_threads: usize,
    nnz: usize,
    rows: usize,
    x_local_lines: u64,
    x_remote_lines: u64,
    matrix_bw_gbs: f64,
) -> f64 {
    let compute = 2.0 * nnz as f64 / (m.core_gflops() * 1e9);
    let share = |total_gbs: f64| total_gbs * 1e9 / active_threads as f64;
    let stream_bytes = nnz as f64 * BYTES_PER_NNZ + rows as f64 * BYTES_PER_ROW;
    // Remote lines traverse the socket interconnect: charged at the
    // machine's NUMA penalty.
    let x_bytes =
        (x_local_lines as f64 + m.numa_penalty * x_remote_lines as f64) * LINE_BYTES as f64;
    let mem =
        stream_bytes / share(matrix_bw_gbs) + x_bytes / share(m.effective_bw_gbs(active_threads));
    compute.max(mem)
}

/// First-touch ownership: element `col` of `x` is owned by the thread
/// whose equal row chunk contains it (both kernels initialise `x`
/// that way), and lives on that thread's socket.
struct NumaMap {
    chunk: usize,
    threads_per_socket: usize,
}

impl NumaMap {
    fn new(n: usize, active_threads: usize, sockets: usize) -> NumaMap {
        NumaMap {
            chunk: n.div_ceil(active_threads.max(1)).max(1),
            threads_per_socket: active_threads.div_ceil(sockets).max(1),
        }
    }

    #[inline]
    fn socket_of_col(&self, col: u32) -> usize {
        (col as usize / self.chunk) / self.threads_per_socket
    }

    #[inline]
    fn socket_of_thread(&self, t: usize) -> usize {
        t / self.threads_per_socket
    }
}

/// Simulate the 1D (row-split) SpMV kernel on a machine, using all of
/// the machine's paper-experiment thread count.
pub fn simulate_spmv_1d(a: &CsrMatrix, m: &Machine) -> SimResult {
    simulate_spmv_1d_opt(a, m, &SimOptions::default())
}

/// Like [`simulate_spmv_1d`], with explicit [`SimOptions`].
pub fn simulate_spmv_1d_opt(a: &CsrMatrix, m: &Machine, opts: &SimOptions) -> SimResult {
    let t = m.threads;
    let plan = Plan1d::new(a, t);
    let matrix_bw = matrix_stream_bw(m, a, t, opts.cache_scale);
    let numa = NumaMap::new(a.ncols(), t, m.sockets);
    let mut thread_seconds = Vec::with_capacity(t);
    let mut thread_nnz = Vec::with_capacity(t);
    let mut dram_bytes = 0.0f64;
    let mut l3s = socket_l3s(m, opts.cache_scale);
    for (ti, &(rstart, rend)) in plan.row_ranges.iter().enumerate() {
        let my_socket = numa.socket_of_thread(ti);
        let l3 = &mut l3s[my_socket.min(m.sockets - 1)];
        let mut caches = PrivateCaches::new(m, opts.cache_scale);
        let mut local = 0u64;
        let mut remote = 0u64;
        for r in rstart..rend {
            let (cols, _) = a.row(r);
            for &c in cols {
                if caches.access(c, l3) {
                    if numa.socket_of_col(c) == my_socket {
                        local += 1;
                    } else {
                        remote += 1;
                    }
                }
            }
        }
        let nnz = a.rowptr()[rend] - a.rowptr()[rstart];
        let rows = rend - rstart;
        let secs = thread_time(m, t, nnz, rows, local, remote, matrix_bw);
        dram_bytes += nnz as f64 * BYTES_PER_NNZ
            + rows as f64 * BYTES_PER_ROW
            + (local + remote) as f64 * 64.0;
        thread_seconds.push(secs);
        thread_nnz.push(nnz);
    }
    SimResult::from_threads(a.nnz(), thread_seconds, thread_nnz, dram_bytes)
}

/// Simulate the 2D (nonzero-split) SpMV kernel on a machine.
pub fn simulate_spmv_2d(a: &CsrMatrix, m: &Machine) -> SimResult {
    simulate_spmv_2d_opt(a, m, &SimOptions::default())
}

/// Like [`simulate_spmv_2d`], with explicit [`SimOptions`].
pub fn simulate_spmv_2d_opt(a: &CsrMatrix, m: &Machine, opts: &SimOptions) -> SimResult {
    let t = m.threads;
    let plan = Plan2d::new(a, t);
    let matrix_bw = matrix_stream_bw(m, a, t, opts.cache_scale);
    let numa = NumaMap::new(a.ncols(), t, m.sockets);
    let mut thread_seconds = Vec::with_capacity(t);
    let mut thread_nnz = Vec::with_capacity(t);
    let mut dram_bytes = 0.0f64;
    let mut l3s = socket_l3s(m, opts.cache_scale);
    for (ti, span) in plan.spans.iter().enumerate() {
        if span.is_empty() {
            thread_seconds.push(0.0);
            thread_nnz.push(0);
            continue;
        }
        let my_socket = numa.socket_of_thread(ti);
        let l3 = &mut l3s[my_socket.min(m.sockets - 1)];
        let mut caches = PrivateCaches::new(m, opts.cache_scale);
        let mut local = 0u64;
        let mut remote = 0u64;
        for k in span.nnz_start..span.nnz_end {
            let c = a.colidx()[k];
            if caches.access(c, l3) {
                if numa.socket_of_col(c) == my_socket {
                    local += 1;
                } else {
                    remote += 1;
                }
            }
        }
        let nnz = span.nnz_end - span.nnz_start;
        let rows = span.row_end + 1 - span.row_start;
        let secs = thread_time(m, t, nnz, rows, local, remote, matrix_bw);
        dram_bytes += nnz as f64 * BYTES_PER_NNZ
            + rows as f64 * BYTES_PER_ROW
            + (local + remote) as f64 * 64.0;
        thread_seconds.push(secs);
        thread_nnz.push(nnz);
    }
    SimResult::from_threads(a.nnz(), thread_seconds, thread_nnz, dram_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines::machine_by_name;
    use sparsemat::{CooMatrix, Permutation};

    fn banded(n: usize, half_bw: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            for j in i.saturating_sub(half_bw)..(i + half_bw + 1).min(n) {
                coo.push(i, j, 1.0);
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    fn shuffled(a: &CsrMatrix, seed: u64) -> CsrMatrix {
        let n = a.nrows();
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }
        let p = Permutation::from_new_to_old(order).unwrap();
        a.permute_symmetric(&p).unwrap()
    }

    /// Dense tall-skinny reference of §4.2: on Milan B the paper
    /// measures ~53 Gflop/s at 77 % of peak bandwidth. A dense CSR
    /// matrix moves 12 bytes per 2 flops (6 B/flop), so the
    /// bandwidth-bound roofline is `effective_bw / 6`.
    #[test]
    fn dense_reference_lands_near_memory_bound_roofline() {
        let m = machine_by_name("Milan B").unwrap();
        let bw = m.effective_bw_gbs(m.threads);
        let expect_gflops = bw / 6.0;
        assert!(
            (expect_gflops - 52.6).abs() < 2.0,
            "roofline calibration drifted: {expect_gflops}"
        );
    }

    #[test]
    fn banded_matrix_beats_shuffled_matrix() {
        // Good locality (banded) must simulate faster than the same
        // matrix shuffled — on every machine.
        let a = banded(40_000, 3);
        let bad = shuffled(&a, 7);
        for m in crate::machines() {
            let good = simulate_spmv_1d(&a, &m);
            let poor = simulate_spmv_1d(&bad, &m);
            assert!(
                good.gflops > poor.gflops,
                "{}: banded {} <= shuffled {}",
                m.name,
                good.gflops,
                poor.gflops
            );
        }
    }

    #[test]
    fn imbalanced_matrix_penalised_in_1d_not_2d() {
        // Heavy first rows: 1D assigns them all to thread 0.
        let n = 20_000;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n / 100 {
            for j in 0..50 {
                coo.push(i, (i * 37 + j * 131) % n, 1.0);
            }
        }
        for i in n / 100..n {
            coo.push(i, i, 1.0);
        }
        let a = CsrMatrix::from_coo(&coo);
        let m = machine_by_name("Rome").unwrap();
        let r1 = simulate_spmv_1d(&a, &m);
        let r2 = simulate_spmv_2d(&a, &m);
        assert!(r1.imbalance > 3.0, "1D imbalance {}", r1.imbalance);
        assert!(r2.imbalance < 1.1, "2D imbalance {}", r2.imbalance);
        assert!(
            r2.gflops > 1.5 * r1.gflops,
            "2D should fix the imbalance: {} vs {}",
            r2.gflops,
            r1.gflops
        );
    }

    #[test]
    fn sim_results_are_internally_consistent() {
        let a = banded(10_000, 2);
        let m = machine_by_name("Skylake").unwrap();
        let r = simulate_spmv_1d(&a, &m);
        assert_eq!(r.thread_seconds.len(), m.threads);
        assert_eq!(r.thread_nnz.iter().sum::<usize>(), a.nnz());
        let max = r.thread_seconds.iter().copied().fold(0.0f64, f64::max);
        assert!((r.seconds - max).abs() < 1e-15);
        assert!(r.gflops > 0.0);
        assert!(r.dram_bytes > 0.0);
    }

    #[test]
    fn arm_machines_are_slower_than_x86_at_same_work() {
        let a = shuffled(&banded(30_000, 3), 3);
        let milan = simulate_spmv_1d(&a, &machine_by_name("Milan B").unwrap());
        let hi = simulate_spmv_1d(&a, &machine_by_name("Hi1620").unwrap());
        assert!(
            milan.gflops > hi.gflops,
            "Milan {} should outpace Hi1620 {}",
            milan.gflops,
            hi.gflops
        );
    }
}
