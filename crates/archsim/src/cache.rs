//! Set-associative LRU cache simulation.
//!
//! The cost model drives the *actual* CSR column-index stream of each
//! thread through a small cache hierarchy to count how many `x`-vector
//! accesses reach DRAM. Only `x` accesses are simulated — matrix data
//! streams through once with no reuse and is accounted analytically.

/// A set-associative LRU cache over 64-byte lines.
#[derive(Debug, Clone)]
pub struct CacheSim {
    /// log2 of the number of sets.
    set_shift: u32,
    set_mask: u64,
    ways: usize,
    /// `sets[s * ways .. (s+1) * ways]`: tags in MRU→LRU order;
    /// `u64::MAX` = empty.
    tags: Vec<u64>,
    hits: u64,
    misses: u64,
}

/// Cache line size in bytes (all modelled machines use 64 B lines).
pub const LINE_BYTES: usize = 64;

impl CacheSim {
    /// Build a cache of roughly `capacity_bytes` with the given
    /// associativity. Capacity is rounded down to a power-of-two number
    /// of sets (at least one).
    pub fn new(capacity_bytes: usize, ways: usize) -> CacheSim {
        let ways = ways.max(1);
        let lines = (capacity_bytes / LINE_BYTES / ways).max(1);
        let set_count = lines.next_power_of_two() >> usize::from(!lines.is_power_of_two());
        let set_count = set_count.max(1);
        CacheSim {
            set_shift: set_count.trailing_zeros(),
            set_mask: set_count as u64 - 1,
            ways,
            tags: vec![u64::MAX; set_count * ways],
            hits: 0,
            misses: 0,
        }
    }

    /// Effective capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.tags.len() * LINE_BYTES
    }

    /// Access a line address (byte address / 64). Returns true on hit;
    /// on miss the line is installed, evicting the LRU way.
    #[inline]
    pub fn access(&mut self, line: u64) -> bool {
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_shift;
        let base = set * self.ways;
        let slot = &mut self.tags[base..base + self.ways];
        // MRU search.
        for i in 0..slot.len() {
            if slot[i] == tag {
                // Move to front.
                slot[..=i].rotate_right(1);
                self.hits += 1;
                return true;
            }
        }
        // Miss: install at MRU, evict LRU.
        slot.rotate_right(1);
        slot[0] = tag;
        self.misses += 1;
        false
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Reset counters and contents.
    pub fn clear(&mut self) {
        self.tags.fill(u64::MAX);
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = CacheSim::new(4096, 4);
        assert!(!c.access(1));
        assert!(c.access(1));
        assert!(c.access(1));
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        // 2-way, 1 set: capacity 2 lines.
        let mut c = CacheSim::new(2 * LINE_BYTES, 2);
        assert_eq!(c.capacity_bytes(), 2 * LINE_BYTES);
        c.access(0);
        c.access(1);
        assert!(c.access(0), "0 still resident");
        c.access(2); // evicts LRU = 1
        assert!(!c.access(1), "1 was evicted");
        assert!(c.access(2));
    }

    #[test]
    fn working_set_within_capacity_always_hits_after_warmup() {
        let mut c = CacheSim::new(64 * LINE_BYTES, 8);
        for round in 0..3 {
            for line in 0..32u64 {
                let hit = c.access(line);
                if round > 0 {
                    assert!(hit, "line {line} should be resident in round {round}");
                }
            }
        }
    }

    #[test]
    fn streaming_larger_than_capacity_always_misses() {
        let mut c = CacheSim::new(16 * LINE_BYTES, 4);
        for round in 0..2 {
            for line in 0..1000u64 {
                let hit = c.access(line);
                assert!(!hit, "round {round} line {line}: streaming cannot hit");
            }
        }
    }

    #[test]
    fn clear_resets_everything() {
        let mut c = CacheSim::new(4096, 4);
        c.access(5);
        c.access(5);
        c.clear();
        assert_eq!(c.hits(), 0);
        assert!(!c.access(5));
    }

    #[test]
    fn tiny_capacity_is_usable() {
        let mut c = CacheSim::new(1, 1);
        assert!(!c.access(0));
        assert!(c.access(0));
    }
}
