#![allow(clippy::needless_range_loop)]

//! Multicore execution-cost model for SpMV — the substitute for the
//! eight physical CPUs of Table 2.
//!
//! The paper's measurements ran on real Skylake/Ice Lake/Zen/ARM
//! machines; this crate reproduces their *relative* behaviour from
//! first principles. SpMV is modelled per thread as the maximum of a
//! compute term and a memory term:
//!
//! - **compute**: `2·nnz_t` flops at a per-core sustained flop rate;
//! - **memory**: streamed matrix bytes (values, column indices, row
//!   pointers, `y` writes) plus `x`-vector DRAM traffic obtained by
//!   *simulating the actual CSR access stream* through a per-core
//!   L1/L2 and shared-L3 LRU cache hierarchy.
//!
//! The total time is the maximum over threads — which is how static
//! scheduling behaves, and exactly what makes the 1D kernel sensitive
//! to load imbalance (§3.1). Reordering changes both the `x` access
//! locality (cache misses) and the per-thread nonzero counts, so the
//! model reproduces the paper's speedup structure: who wins, by what
//! factor, and how it differs between the 1D and 2D kernels.
//!
//! Absolute Gflop/s are calibrated only loosely (§4.2's dense
//! tall-skinny reference lands near the paper's 77 % of peak on
//! Milan B); all experiment tables report *speedups over the original
//! ordering*, which depend on traffic and balance ratios rather than
//! absolute constants.

mod cache;
mod machines;
mod model;

pub use cache::CacheSim;
pub use machines::{machine_by_name, machines, Machine};
pub use model::{
    simulate_spmv_1d, simulate_spmv_1d_opt, simulate_spmv_2d, simulate_spmv_2d_opt, SimOptions,
    SimResult, BYTES_PER_NNZ, BYTES_PER_ROW,
};
