use serde::{Deserialize, Serialize};

/// A multicore CPU model, mirroring one row of Table 2 plus the
/// calibration constants the cost model needs.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Machine {
    /// Short name used throughout the paper ("Skylake", "Milan B", ...).
    pub name: String,
    /// Marketing CPU name.
    pub cpu: String,
    /// Instruction set.
    pub isa: String,
    /// Microarchitecture.
    pub microarch: String,
    /// Socket count.
    pub sockets: usize,
    /// Cores per socket.
    pub cores_per_socket: usize,
    /// Sustained all-core frequency in GHz (midpoint of Table 2's range).
    pub freq_ghz: f64,
    /// L1 data cache per core, KiB.
    pub l1d_kib: usize,
    /// L2 cache per core, KiB.
    pub l2_kib: usize,
    /// L3 cache per socket, MiB.
    pub l3_mib_per_socket: usize,
    /// Nominal DRAM bandwidth, GB/s (whole machine).
    pub mem_bw_gbs: f64,
    /// Threads used in the paper's experiments (artifact file names).
    pub threads: usize,
    /// Sustained SpMV flops per cycle per core (calibration).
    pub flops_per_cycle: f64,
    /// Per-core sustainable DRAM bandwidth, GB/s (MLP/latency limit;
    /// notably low on the ARM parts, matching the paper's observation
    /// of 20-30 Gflop/s medians there).
    pub per_core_bw_gbs: f64,
    /// Achievable fraction of nominal DRAM bandwidth (the paper
    /// measures 77 % on Milan B with the dense reference).
    pub bw_efficiency: f64,
    /// Relative cost of a remote-socket DRAM access vs a local one
    /// under the first-touch policy (1.0 on single-socket machines).
    pub numa_penalty: f64,
}

impl Machine {
    /// Total core count.
    pub fn total_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Total L3 capacity in bytes.
    pub fn l3_total_bytes(&self) -> usize {
        self.sockets * self.l3_mib_per_socket * 1024 * 1024
    }

    /// Per-core flop rate in Gflop/s.
    pub fn core_gflops(&self) -> f64 {
        self.freq_ghz * self.flops_per_cycle
    }

    /// Effective aggregate DRAM bandwidth with `t` active threads,
    /// GB/s: limited both by the memory system and by per-core
    /// concurrency.
    pub fn effective_bw_gbs(&self, t: usize) -> f64 {
        (self.mem_bw_gbs * self.bw_efficiency).min(t as f64 * self.per_core_bw_gbs)
    }
}

macro_rules! machine {
    ($name:expr, $cpu:expr, $isa:expr, $uarch:expr, $sockets:expr, $cps:expr,
     $freq:expr, $l1:expr, $l2:expr, $l3:expr, $bw:expr, $threads:expr,
     $fpc:expr, $pcbw:expr, $eff:expr, $numa:expr) => {
        Machine {
            name: $name.to_string(),
            cpu: $cpu.to_string(),
            isa: $isa.to_string(),
            microarch: $uarch.to_string(),
            sockets: $sockets,
            cores_per_socket: $cps,
            freq_ghz: $freq,
            l1d_kib: $l1,
            l2_kib: $l2,
            l3_mib_per_socket: $l3,
            mem_bw_gbs: $bw,
            threads: $threads,
            flops_per_cycle: $fpc,
            per_core_bw_gbs: $pcbw,
            bw_efficiency: $eff,
            numa_penalty: $numa,
        }
    };
}

/// The eight machines of Table 2, with calibration constants.
pub fn machines() -> Vec<Machine> {
    vec![
        machine!(
            "Skylake",
            "Intel Xeon Gold 6130",
            "x86-64",
            "Skylake",
            2,
            16,
            2.4,
            32,
            1024,
            22,
            256.0,
            32,
            2.0,
            9.0,
            0.75,
            2.0
        ),
        machine!(
            "Ice Lake",
            "Intel Xeon Platinum 8360Y",
            "x86-64",
            "Ice Lake",
            2,
            36,
            2.8,
            48,
            1280,
            54,
            409.6,
            72,
            2.0,
            10.0,
            0.77,
            1.9
        ),
        machine!(
            "Naples",
            "AMD Epyc 7601",
            "x86-64",
            "Zen",
            2,
            32,
            2.9,
            32,
            512,
            64,
            342.0,
            64,
            2.0,
            8.0,
            0.70,
            2.4
        ),
        machine!(
            "Rome",
            "AMD Epyc 7302P",
            "x86-64",
            "Zen 2",
            1,
            16,
            2.8,
            32,
            512,
            16,
            204.8,
            16,
            2.0,
            10.0,
            0.75,
            1.0
        ),
        machine!(
            "Milan A",
            "AMD Epyc 7413",
            "x86-64",
            "Zen 3",
            2,
            24,
            3.0,
            32,
            512,
            128,
            409.6,
            48,
            2.0,
            10.0,
            0.77,
            2.2
        ),
        machine!(
            "Milan B",
            "AMD Epyc 7763",
            "x86-64",
            "Zen 3",
            2,
            64,
            2.8,
            32,
            512,
            256,
            409.6,
            128,
            2.0,
            8.0,
            0.77,
            2.2
        ),
        machine!(
            "TX2",
            "Cavium TX2 CN9980",
            "ARMv8.1",
            "Vulcan",
            2,
            32,
            2.25,
            32,
            256,
            32,
            342.0,
            64,
            0.8,
            2.5,
            0.60,
            2.5
        ),
        machine!(
            "Hi1620",
            "HiSilicon Kunpeng 920-6426",
            "ARMv8.2",
            "TaiShan v110",
            2,
            64,
            2.6,
            64,
            512,
            64,
            342.0,
            128,
            0.8,
            2.0,
            0.60,
            2.5
        ),
    ]
}

/// Look up a machine by its short name.
pub fn machine_by_name(name: &str) -> Option<Machine> {
    machines().into_iter().find(|m| m.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_machines_matching_table2() {
        let ms = machines();
        assert_eq!(ms.len(), 8);
        let names: Vec<&str> = ms.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["Skylake", "Ice Lake", "Naples", "Rome", "Milan A", "Milan B", "TX2", "Hi1620"]
        );
    }

    #[test]
    fn core_counts_match_table2() {
        let expect = [
            ("Skylake", 32),
            ("Ice Lake", 72),
            ("Naples", 64),
            ("Rome", 16),
            ("Milan A", 48),
            ("Milan B", 128),
            ("TX2", 64),
            ("Hi1620", 128),
        ];
        for (name, cores) in expect {
            let m = machine_by_name(name).unwrap();
            assert_eq!(m.total_cores(), cores, "{name}");
            assert_eq!(m.threads, cores, "{name}: paper uses all cores");
        }
    }

    #[test]
    fn milan_b_has_largest_l3() {
        let ms = machines();
        let max = ms.iter().max_by_key(|m| m.l3_total_bytes()).unwrap();
        assert_eq!(max.name, "Milan B");
        assert_eq!(max.l3_total_bytes(), 512 * 1024 * 1024);
    }

    #[test]
    fn effective_bandwidth_saturates() {
        let m = machine_by_name("Milan B").unwrap();
        // One thread: limited by the per-core cap.
        assert!((m.effective_bw_gbs(1) - 8.0).abs() < 1e-9);
        // All threads: limited by the memory system.
        let full = m.effective_bw_gbs(128);
        assert!((full - 409.6 * 0.77).abs() < 1e-9);
        // The dense reference of §4.2 measures ~317 GB/s ≈ 77 % of peak.
        assert!((full - 315.4).abs() < 1.0);
    }

    #[test]
    fn arm_parts_have_low_per_core_bandwidth() {
        let tx2 = machine_by_name("TX2").unwrap();
        let skl = machine_by_name("Skylake").unwrap();
        assert!(tx2.per_core_bw_gbs < skl.per_core_bw_gbs / 2.0);
    }

    #[test]
    fn lookup_unknown_machine() {
        assert!(machine_by_name("M1 Max").is_none());
    }
}
