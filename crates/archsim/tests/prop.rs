//! Property-based tests for the machine model: conservation laws and
//! monotonicity that must hold for any matrix.

use archsim::{machines, simulate_spmv_1d_opt, simulate_spmv_2d_opt, SimOptions};
use proptest::prelude::*;
use sparsemat::{CooMatrix, CsrMatrix};

fn matrix_strategy() -> impl Strategy<Value = CsrMatrix> {
    (
        50usize..400,
        proptest::collection::vec((0usize..160_000, 0usize..160_000), 50..400),
    )
        .prop_map(|(n, entries)| {
            let mut coo = CooMatrix::new(n, n);
            for i in 0..n {
                coo.push(i, i, 1.0);
            }
            for (a, b) in entries {
                coo.push(a % n, b % n, 1.0);
            }
            CsrMatrix::from_coo(&coo)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn simulation_conserves_work(a in matrix_strategy()) {
        let opts = SimOptions { cache_scale: 1.0 / 16.0 };
        for m in machines().into_iter().take(3) {
            let r1 = simulate_spmv_1d_opt(&a, &m, &opts);
            prop_assert_eq!(r1.thread_nnz.iter().sum::<usize>(), a.nnz());
            prop_assert!(r1.seconds > 0.0);
            prop_assert!(r1.gflops.is_finite() && r1.gflops >= 0.0);
            prop_assert!(r1.imbalance >= 1.0 - 1e-9);
            // Completion time is the max thread time.
            let max = r1.thread_seconds.iter().copied().fold(0.0f64, f64::max);
            prop_assert!((r1.seconds - max.max(1e-12)).abs() < 1e-15);

            let r2 = simulate_spmv_2d_opt(&a, &m, &opts);
            prop_assert_eq!(r2.thread_nnz.iter().sum::<usize>(), a.nnz());
            // 2D is nonzero-balanced up to rounding: counts differ by at
            // most 1, so the factor is bounded by 1 + threads/nnz.
            let bound = 1.0 + m.threads as f64 / a.nnz() as f64 + 1e-9;
            prop_assert!(r2.imbalance <= bound, "2D imbalance {} > {}", r2.imbalance, bound);
        }
    }

    #[test]
    fn smaller_caches_never_run_faster(a in matrix_strategy()) {
        let m = &machines()[5]; // Milan B
        let big = simulate_spmv_1d_opt(&a, m, &SimOptions { cache_scale: 1.0 });
        let small = simulate_spmv_1d_opt(&a, m, &SimOptions { cache_scale: 1.0 / 64.0 });
        prop_assert!(
            small.gflops <= big.gflops * 1.001,
            "shrinking caches sped things up: {} -> {}",
            big.gflops,
            small.gflops
        );
    }

    #[test]
    fn dram_traffic_at_least_matrix_stream(a in matrix_strategy()) {
        let m = &machines()[0];
        let r = simulate_spmv_1d_opt(&a, m, &SimOptions { cache_scale: 0.25 });
        let stream = a.nnz() as f64 * 12.0;
        prop_assert!(r.dram_bytes >= stream, "{} < {}", r.dram_bytes, stream);
    }
}
