//! Property-based tests for the sparse matrix substrate.

use proptest::prelude::*;
use sparsemat::{symmetrize_pattern, CooMatrix, CsrMatrix, EdgeOp, Permutation};

/// Strategy: a random COO matrix with dimensions up to 24 and up to 80
/// entries (duplicates allowed, as permitted by the builder).
fn coo_strategy() -> impl Strategy<Value = CooMatrix> {
    (1usize..24, 1usize..24).prop_flat_map(|(nr, nc)| {
        proptest::collection::vec((0..nr, 0..nc, -10.0f64..10.0), 0..80).prop_map(move |entries| {
            let mut coo = CooMatrix::new(nr, nc);
            for (r, c, v) in entries {
                coo.push(r, c, v);
            }
            coo
        })
    })
}

/// Strategy: a random square COO matrix.
fn square_coo_strategy() -> impl Strategy<Value = CooMatrix> {
    (2usize..24).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, -10.0f64..10.0), 0..80).prop_map(move |entries| {
            let mut coo = CooMatrix::new(n, n);
            for (r, c, v) in entries {
                coo.push(r, c, v);
            }
            coo
        })
    })
}

/// Strategy: a random permutation of n indices (Fisher-Yates driven by a
/// proptest-provided swap schedule).
fn permutation_strategy(n: usize) -> impl Strategy<Value = Permutation> {
    proptest::collection::vec(0usize..n.max(1), n).prop_map(move |swaps| {
        let mut order: Vec<u32> = (0..n as u32).collect();
        for (i, &j) in swaps.iter().enumerate() {
            order.swap(i, j % n.max(1));
        }
        Permutation::from_new_to_old(order).unwrap()
    })
}

/// Strategy: a random square COO matrix together with a random
/// permutation of matching dimension.
fn square_coo_with_permutation() -> impl Strategy<Value = (CooMatrix, Permutation)> {
    (2usize..24).prop_flat_map(|n| {
        (
            proptest::collection::vec((0..n, 0..n, -10.0f64..10.0), 0..80),
            permutation_strategy(n),
        )
            .prop_map(move |(entries, p)| {
                let mut coo = CooMatrix::new(n, n);
                for (r, c, v) in entries {
                    coo.push(r, c, v);
                }
                (coo, p)
            })
    })
}

proptest! {
    #[test]
    fn csr_from_coo_is_valid(coo in coo_strategy()) {
        let a = CsrMatrix::from_coo(&coo);
        prop_assert!(a.validate().is_ok());
        // Sum of values is preserved (duplicates summed, not dropped).
        let total_coo: f64 = coo.iter().map(|(_, _, v)| v).sum();
        let total_csr: f64 = a.values().iter().sum();
        prop_assert!((total_coo - total_csr).abs() < 1e-9);
    }

    #[test]
    fn transpose_is_involutive(coo in coo_strategy()) {
        let a = CsrMatrix::from_coo(&coo);
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn csc_roundtrip(coo in coo_strategy()) {
        let a = CsrMatrix::from_coo(&coo);
        prop_assert_eq!(a.to_csc().to_csr(), a);
    }

    #[test]
    fn spmv_transpose_identity(coo in coo_strategy()) {
        // For all x, y: yᵀ(Ax) == xᵀ(Aᵀy). Check with ramp vectors.
        let a = CsrMatrix::from_coo(&coo);
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i + 1) as f64).collect();
        let y: Vec<f64> = (0..a.nrows()).map(|i| (i + 2) as f64).collect();
        let ax = a.spmv_dense(&x);
        let aty = a.transpose().spmv_dense(&y);
        let lhs: f64 = y.iter().zip(ax.iter()).map(|(&u, &v)| u * v).sum();
        let rhs: f64 = x.iter().zip(aty.iter()).map(|(&u, &v)| u * v).sum();
        prop_assert!((lhs - rhs).abs() < 1e-6 * (1.0 + lhs.abs()));
    }

    #[test]
    fn symmetric_permutation_preserves_spmv(coo in square_coo_strategy(), seed in 0usize..1000) {
        let a = CsrMatrix::from_coo(&coo);
        let n = a.nrows();
        // A deterministic pseudo-random permutation from the seed.
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut state = seed as u64 + 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let p = Permutation::from_new_to_old(order).unwrap();
        let b = a.permute_symmetric(&p).unwrap();
        prop_assert!(b.validate().is_ok());
        prop_assert_eq!(b.nnz(), a.nnz());
        // (P A Pᵀ)(P x) == P (A x)
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let px = p.apply_to_slice(&x);
        let bpx = b.spmv_dense(&px);
        let pax = p.apply_to_slice(&a.spmv_dense(&x));
        for (u, v) in bpx.iter().zip(pax.iter()) {
            prop_assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn row_permutation_preserves_row_content(coo in square_coo_strategy()) {
        let a = CsrMatrix::from_coo(&coo);
        let n = a.nrows();
        let order: Vec<u32> = (0..n as u32).rev().collect();
        let p = Permutation::from_new_to_old(order).unwrap();
        let b = a.permute_rows(&p);
        for new_i in 0..n {
            let old_i = p.new_to_old(new_i);
            prop_assert_eq!(b.row(new_i), a.row(old_i));
        }
    }

    #[test]
    fn symmetrize_yields_symmetric_superset(coo in square_coo_strategy()) {
        let a = CsrMatrix::from_coo(&coo);
        let s = symmetrize_pattern(&a).unwrap();
        prop_assert!(sparsemat::is_structurally_symmetric(&s));
        // Every entry of A appears in S.
        for (i, j, _) in a.iter() {
            prop_assert!(s.get(i, j).is_some());
        }
        prop_assert!(s.nnz() >= a.nnz());
        prop_assert!(s.nnz() <= 2 * a.nnz());
    }

    #[test]
    fn row_then_col_permutation_equals_symmetric(
        (coo, p) in square_coo_with_permutation(),
    ) {
        let a = CsrMatrix::from_coo(&coo);
        // P A Pᵀ factors into row and column moves: the symmetric
        // permutation is exactly a row permutation followed by a column
        // permutation by the same P (in either order).
        let sym = a.permute_symmetric(&p).unwrap();
        prop_assert_eq!(&a.permute_rows(&p).permute_cols(&p), &sym);
        prop_assert_eq!(&a.permute_cols(&p).permute_rows(&p), &sym);
    }

    #[test]
    fn permutation_inverse_round_trips_matrices(
        coo in square_coo_strategy(),
        seed in 0usize..1000,
    ) {
        let a = CsrMatrix::from_coo(&coo);
        let n = a.nrows();
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut state = seed as u64 + 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let p = Permutation::from_new_to_old(order).unwrap();
        let inv = p.inverse();
        // Applying P then P⁻¹ restores the original matrix exactly, for
        // all three permutation flavours.
        let b = a.permute_symmetric(&p).unwrap();
        prop_assert_eq!(&b.permute_symmetric(&inv).unwrap(), &a);
        prop_assert_eq!(&a.permute_rows(&p).permute_rows(&inv), &a);
        prop_assert_eq!(&a.permute_cols(&p).permute_cols(&inv), &a);
    }

    #[test]
    fn permutation_compose_inverse_is_identity(n in 1usize..40, p in (1usize..40).prop_flat_map(permutation_strategy)) {
        let _ = n;
        // p.then(p⁻¹) maps position k to p.new_to_old(p.old_to_new(k)) = k.
        prop_assert!(p.then(&p.inverse()).is_identity());
        prop_assert!(p.inverse().then(&p).is_identity());
    }

    #[test]
    fn apply_delta_add_then_remove_round_trips(
        coo in square_coo_strategy(),
        cells in proptest::collection::vec((0usize..24, 0usize..24, -5.0f64..5.0), 1..40),
    ) {
        let a = CsrMatrix::from_coo(&coo);
        let n = a.nrows();
        let h0 = a.content_hash();

        // Add ops over pseudo-random cells *absent* from A (an add of an
        // existing entry is a structural no-op, so removing it afterwards
        // would delete original content — not a round trip). Duplicate
        // ops on the same cell and self-edges (row == col) stay in.
        let adds: Vec<EdgeOp> = cells
            .iter()
            .map(|&(r, c, v)| (r % n, c % n, v))
            .filter(|&(r, c, _)| a.get(r, c).is_none())
            .map(|(row, col, value)| EdgeOp::Add { row, col, value })
            .collect();
        let removes: Vec<EdgeOp> = adds
            .iter()
            .map(|op| match *op {
                EdgeOp::Add { row, col, .. } => EdgeOp::Remove { row, col },
                EdgeOp::Remove { .. } => unreachable!("adds only"),
            })
            .collect();

        let mut m = a.clone();
        let fwd = m.apply_delta(&adds).unwrap();
        prop_assert!(m.validate().is_ok());
        prop_assert_eq!(m.nnz(), a.nnz() + fwd.added);
        if fwd.changed() {
            prop_assert_ne!(m.content_hash(), h0);
            prop_assert_eq!(m.parent_hash(), Some(h0));
            let mid = m.content_hash();
            let back = m.apply_delta(&removes).unwrap();
            prop_assert_eq!(back.removed, fwd.added);
            prop_assert_eq!(m.parent_hash(), Some(mid));
            // Both hops report the same touched endpoints.
            prop_assert_eq!(&back.touched_rows, &fwd.touched_rows);
        } else {
            prop_assert!(m.apply_delta(&removes).unwrap().noops == removes.len());
        }
        // Pattern, values and content hash are all restored.
        prop_assert!(m.validate().is_ok());
        prop_assert!(m.same_pattern(&a));
        prop_assert_eq!(&m, &a);
        prop_assert_eq!(m.content_hash(), h0);
    }

    #[test]
    fn apply_delta_matches_from_coo_rebuild(
        coo in square_coo_strategy(),
        cells in proptest::collection::vec((0usize..24, 0usize..24, -5.0f64..5.0), 1..30),
    ) {
        // The streaming merge must agree with the ground truth: rebuild
        // the mutated matrix from scratch via COO.
        let a = CsrMatrix::from_coo(&coo);
        let n = a.nrows();
        let ops: Vec<EdgeOp> = cells
            .iter()
            .enumerate()
            .map(|(k, &(r, c, v))| {
                if k % 3 == 0 {
                    EdgeOp::Remove { row: r % n, col: c % n }
                } else {
                    EdgeOp::Add { row: r % n, col: c % n, value: v }
                }
            })
            .collect();
        let mut m = a.clone();
        m.apply_delta(&ops).unwrap();
        prop_assert!(m.validate().is_ok());

        // Ground truth: batch semantics are last-op-wins per cell, so
        // dedupe first, then apply each surviving op to an entry map.
        let mut truth: std::collections::BTreeMap<(usize, usize), f64> =
            a.iter().map(|(i, j, v)| ((i, j), v)).collect();
        let mut last: std::collections::BTreeMap<(usize, usize), EdgeOp> = Default::default();
        for op in &ops {
            let (r, c) = match *op {
                EdgeOp::Add { row, col, .. } | EdgeOp::Remove { row, col } => (row, col),
            };
            last.insert((r, c), *op);
        }
        for ((r, c), op) in last {
            match op {
                EdgeOp::Add { value, .. } => {
                    truth.entry((r, c)).or_insert(value);
                }
                EdgeOp::Remove { .. } => {
                    truth.remove(&(r, c));
                }
            }
        }
        let got: std::collections::BTreeMap<(usize, usize), f64> =
            m.iter().map(|(i, j, v)| ((i, j), v)).collect();
        prop_assert_eq!(got, truth);
    }

    #[test]
    fn market_roundtrip_preserves_matrix(coo in coo_strategy()) {
        let a = CsrMatrix::from_coo(&coo);
        let mut text = format!(
            "%%MatrixMarket matrix coordinate real general\n{} {} {}\n",
            a.nrows(), a.ncols(), a.nnz());
        for (i, j, v) in a.iter() {
            text.push_str(&format!("{} {} {:e}\n", i + 1, j + 1, v));
        }
        let (b, _) = sparsemat::read_matrix_market_str(&text).unwrap();
        prop_assert_eq!(b.nrows(), a.nrows());
        prop_assert_eq!(b.nnz(), a.nnz());
        for ((i1, j1, v1), (i2, j2, v2)) in a.iter().zip(b.iter()) {
            prop_assert_eq!((i1, j1), (i2, j2));
            prop_assert!((v1 - v2).abs() < 1e-12 * (1.0 + v1.abs()));
        }
    }
}
