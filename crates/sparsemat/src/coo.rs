use crate::{ColIdx, SparseError};

/// A sparse matrix in coordinate (triplet) form.
///
/// COO is the natural construction format: entries may be pushed in any
/// order and duplicates are allowed (they are summed on conversion to
/// CSR, matching Matrix Market semantics). All reordering pipelines in
/// this repository build matrices through `CooMatrix` and then convert
/// with [`crate::CsrMatrix::from_coo`].
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<u32>,
    cols: Vec<u32>,
    values: Vec<f64>,
}

impl CooMatrix {
    /// Create an empty COO matrix with the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension exceeds `u32::MAX`, the limit imposed
    /// by 32-bit index storage.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        assert!(
            nrows <= u32::MAX as usize && ncols <= u32::MAX as usize,
            "matrix dimensions exceed 32-bit index limit"
        );
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Create an empty COO matrix with room for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        let mut m = CooMatrix::new(nrows, ncols);
        m.rows.reserve(cap);
        m.cols.reserve(cap);
        m.values.reserve(cap);
        m
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries, counting duplicates separately.
    pub fn num_entries(&self) -> usize {
        self.values.len()
    }

    /// Append an entry. Panics if out of bounds (the hot path used by
    /// generators; see [`CooMatrix::try_push`] for a checked variant).
    #[inline]
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.nrows && col < self.ncols,
            "entry ({row}, {col}) out of bounds for {}x{} matrix",
            self.nrows,
            self.ncols
        );
        self.rows.push(row as u32);
        self.cols.push(col as u32);
        self.values.push(value);
    }

    /// Append an entry, returning an error if out of bounds.
    pub fn try_push(&mut self, row: usize, col: usize, value: f64) -> Result<(), SparseError> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        self.push(row, col, value);
        Ok(())
    }

    /// Append an entry and, if it is off-diagonal, its transpose.
    ///
    /// This mirrors the paper's handling of symmetric Matrix Market
    /// inputs (§4.1): "whenever an off-diagonal nonzero is encountered,
    /// two nonzeros are inserted into the CSR representation".
    pub fn push_symmetric(&mut self, row: usize, col: usize, value: f64) {
        self.push(row, col, value);
        if row != col {
            self.push(col, row, value);
        }
    }

    /// Iterate over `(row, col, value)` triplets in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.rows
            .iter()
            .zip(self.cols.iter())
            .zip(self.values.iter())
            .map(|((&r, &c), &v)| (r as usize, c as usize, v))
    }

    /// Borrow the raw triplet arrays `(rows, cols, values)`.
    pub fn triplets(&self) -> (&[u32], &[ColIdx], &[f64]) {
        (&self.rows, &self.cols, &self.values)
    }

    /// Build a COO matrix directly from triplet vectors.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        rows: Vec<u32>,
        cols: Vec<u32>,
        values: Vec<f64>,
    ) -> Result<Self, SparseError> {
        if rows.len() != cols.len() || rows.len() != values.len() {
            return Err(SparseError::InvalidStructure(format!(
                "triplet arrays have mismatched lengths: {} rows, {} cols, {} values",
                rows.len(),
                cols.len(),
                values.len()
            )));
        }
        for (&r, &c) in rows.iter().zip(cols.iter()) {
            if r as usize >= nrows || c as usize >= ncols {
                return Err(SparseError::IndexOutOfBounds {
                    row: r as usize,
                    col: c as usize,
                    nrows,
                    ncols,
                });
            }
        }
        Ok(CooMatrix {
            nrows,
            ncols,
            rows,
            cols,
            values,
        })
    }

    /// Transpose in place by swapping the row and column arrays.
    pub fn transpose(&mut self) {
        std::mem::swap(&mut self.rows, &mut self.cols);
        std::mem::swap(&mut self.nrows, &mut self.ncols);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iterate() {
        let mut m = CooMatrix::new(2, 3);
        m.push(0, 2, 1.5);
        m.push(1, 0, -2.0);
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(entries, vec![(0, 2, 1.5), (1, 0, -2.0)]);
        assert_eq!(m.num_entries(), 2);
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.ncols(), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_out_of_bounds_panics() {
        let mut m = CooMatrix::new(2, 2);
        m.push(2, 0, 1.0);
    }

    #[test]
    fn try_push_reports_error() {
        let mut m = CooMatrix::new(2, 2);
        assert!(m.try_push(1, 1, 1.0).is_ok());
        let e = m.try_push(0, 5, 1.0).unwrap_err();
        assert!(matches!(e, SparseError::IndexOutOfBounds { col: 5, .. }));
    }

    #[test]
    fn push_symmetric_mirrors_offdiagonal() {
        let mut m = CooMatrix::new(3, 3);
        m.push_symmetric(0, 1, 2.0);
        m.push_symmetric(2, 2, 5.0);
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(entries, vec![(0, 1, 2.0), (1, 0, 2.0), (2, 2, 5.0)]);
    }

    #[test]
    fn from_triplets_validates() {
        let ok = CooMatrix::from_triplets(2, 2, vec![0, 1], vec![1, 0], vec![1.0, 2.0]);
        assert!(ok.is_ok());
        let bad_len = CooMatrix::from_triplets(2, 2, vec![0], vec![1, 0], vec![1.0, 2.0]);
        assert!(bad_len.is_err());
        let bad_idx = CooMatrix::from_triplets(2, 2, vec![0, 3], vec![1, 0], vec![1.0, 2.0]);
        assert!(bad_idx.is_err());
    }

    #[test]
    fn transpose_swaps() {
        let mut m = CooMatrix::new(2, 3);
        m.push(0, 2, 1.0);
        m.transpose();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 2);
        assert_eq!(m.iter().next(), Some((2, 0, 1.0)));
    }
}
