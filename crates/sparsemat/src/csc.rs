use crate::{ColIdx, CsrMatrix, SparseError};

/// A sparse matrix in compressed sparse column (CSC) format.
///
/// CSC is the column-major dual of CSR: `colptr[j]..colptr[j+1]`
/// delimits the nonzeros of column `j`, whose row indices are stored in
/// `rowidx`. The Cholesky substrate works column-wise and therefore
/// consumes this form.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    nrows: usize,
    ncols: usize,
    colptr: Vec<usize>,
    rowidx: Vec<ColIdx>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Construct from raw parts, validating structural invariants.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        colptr: Vec<usize>,
        rowidx: Vec<ColIdx>,
        values: Vec<f64>,
    ) -> Result<Self, SparseError> {
        // Validate by viewing the arrays as a CSR matrix of the transpose.
        CsrMatrix::from_parts(ncols, nrows, colptr.clone(), rowidx.clone(), values.clone())?;
        Ok(CscMatrix {
            nrows,
            ncols,
            colptr,
            rowidx,
            values,
        })
    }

    /// Reinterpret a CSR matrix holding `Aᵀ` as a CSC view of `A`.
    ///
    /// The CSR rows of `Aᵀ` are exactly the columns of `A`, so the
    /// arrays transfer without copying.
    pub fn from_transposed_csr(t: CsrMatrix) -> CscMatrix {
        let (nrows, ncols) = (t.ncols(), t.nrows());
        CscMatrix {
            nrows,
            ncols,
            colptr: t.rowptr().to_vec(),
            rowidx: t.colidx().to_vec(),
            values: t.values().to_vec(),
        }
    }

    /// Convert a CSR matrix to CSC.
    pub fn from_csr(a: &CsrMatrix) -> CscMatrix {
        a.to_csc()
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.rowidx.len()
    }

    /// The column pointer array (`ncols + 1` entries).
    #[inline]
    pub fn colptr(&self) -> &[usize] {
        &self.colptr
    }

    /// The row index array (`nnz` entries).
    #[inline]
    pub fn rowidx(&self) -> &[ColIdx] {
        &self.rowidx
    }

    /// The value array.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Row indices and values of column `j`.
    #[inline]
    pub fn col(&self, j: usize) -> (&[ColIdx], &[f64]) {
        let lo = self.colptr[j];
        let hi = self.colptr[j + 1];
        (&self.rowidx[lo..hi], &self.values[lo..hi])
    }

    /// Number of nonzeros in column `j`.
    #[inline]
    pub fn col_nnz(&self, j: usize) -> usize {
        self.colptr[j + 1] - self.colptr[j]
    }

    /// Convert to CSR.
    pub fn to_csr(&self) -> CsrMatrix {
        // Our arrays are the CSR form of Aᵀ; transposing that yields A.
        let t = CsrMatrix::from_parts_unchecked(
            self.ncols,
            self.nrows,
            self.colptr.clone(),
            self.rowidx.clone(),
            self.values.clone(),
        );
        t.transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn small_csr() -> CsrMatrix {
        // [ 1 0 2 ]
        // [ 0 3 0 ]
        // [ 4 0 5 ]
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 1.0);
        coo.push(0, 2, 2.0);
        coo.push(1, 1, 3.0);
        coo.push(2, 0, 4.0);
        coo.push(2, 2, 5.0);
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn csr_to_csc_columns() {
        let a = small_csr();
        let c = a.to_csc();
        assert_eq!(c.nrows(), 3);
        assert_eq!(c.ncols(), 3);
        assert_eq!(c.nnz(), 5);
        let (rows, vals) = c.col(0);
        assert_eq!(rows, &[0, 2]);
        assert_eq!(vals, &[1.0, 4.0]);
        let (rows, vals) = c.col(2);
        assert_eq!(rows, &[0, 2]);
        assert_eq!(vals, &[2.0, 5.0]);
        assert_eq!(c.col_nnz(1), 1);
    }

    #[test]
    fn csc_roundtrip_to_csr() {
        let a = small_csr();
        let back = a.to_csc().to_csr();
        assert_eq!(back, a);
    }

    #[test]
    fn rectangular_conversion() {
        let mut coo = CooMatrix::new(2, 4);
        coo.push(0, 3, 1.0);
        coo.push(1, 0, 2.0);
        coo.push(1, 3, 3.0);
        let a = CsrMatrix::from_coo(&coo);
        let c = a.to_csc();
        assert_eq!(c.nrows(), 2);
        assert_eq!(c.ncols(), 4);
        let (rows, _) = c.col(3);
        assert_eq!(rows, &[0, 1]);
        assert_eq!(c.to_csr(), a);
    }

    #[test]
    fn from_parts_validates() {
        assert!(CscMatrix::from_parts(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]).is_ok());
        assert!(CscMatrix::from_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]).is_err());
    }
}
