#![allow(clippy::needless_range_loop)]

//! Sparse matrix substrate: storage formats, conversions, permutations,
//! symmetrisation and Matrix Market I/O.
//!
//! This crate provides the data-structure layer used throughout the
//! reproduction of *Bringing Order to Sparsity* (SC '23). Matrices are
//! stored in the compressed sparse row (CSR) format described in §3.1 of
//! the paper: row pointers, 32-bit column offsets and double-precision
//! values. A coordinate (COO) builder and a compressed sparse column (CSC)
//! view are provided for construction and transposition.
//!
//! # Example
//!
//! ```
//! use sparsemat::{CooMatrix, CsrMatrix};
//!
//! let mut coo = CooMatrix::new(3, 3);
//! coo.push(0, 0, 2.0);
//! coo.push(1, 1, 3.0);
//! coo.push(2, 0, -1.0);
//! coo.push(2, 2, 4.0);
//! let a = CsrMatrix::from_coo(&coo);
//! assert_eq!(a.nnz(), 4);
//! let y = a.spmv_dense(&[1.0, 1.0, 1.0]);
//! assert_eq!(y, vec![2.0, 3.0, 3.0]);
//! ```

mod coo;
mod csc;
mod csr;
mod dense;
mod error;
mod market;
mod permutation;
mod spy;
mod symmetrize;

pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::{CsrMatrix, DeltaReport, EdgeOp, LineageHop, LINEAGE_CAP};
pub use dense::{axpy, dot, norm2, DenseVector};
pub use error::SparseError;
pub use market::{read_matrix_market, read_matrix_market_str, write_matrix_market, MarketHeader};
pub use permutation::Permutation;
pub use spy::{spy_string, SpyOptions};
pub use symmetrize::{is_structurally_symmetric, symmetrize_pattern, symmetrize_pattern_on};

/// Column index type used in CSR/CSC storage.
///
/// The paper stores column offsets as 32-bit integers (§4.1); we do the
/// same, which bounds matrix dimensions to `u32::MAX`.
pub type ColIdx = u32;
