use crate::{ColIdx, CsrMatrix, SparseError};
use team::{Exec, SliceWriter};

/// Rows per chunk for the parallel row loops in this crate. Row work
/// is O(row nnz), so a few hundred rows amortise a chunk claim while
/// still load-balancing skewed matrices.
pub(crate) const PAR_ROW_GRAIN: usize = 512;

/// True if the sparsity pattern of a square matrix is symmetric
/// (an entry at `(i, j)` implies an entry at `(j, i)`; values are
/// ignored).
pub fn is_structurally_symmetric(a: &CsrMatrix) -> bool {
    if !a.is_square() {
        return false;
    }
    let t = a.transpose();
    a.rowptr() == t.rowptr() && a.colidx() == t.colidx()
}

/// The structural symmetrisation `A + Aᵀ` (pattern only, values 1.0).
///
/// The symmetric reorderings in the paper (RCM, AMD, ND, GP) operate on
/// the undirected graph of a structurally symmetric matrix; for
/// unsymmetric inputs, §3.3 prescribes using the pattern of `A + Aᵀ`.
/// Diagonal entries are preserved as-is; the result has a symmetric
/// pattern by construction.
pub fn symmetrize_pattern(a: &CsrMatrix) -> Result<CsrMatrix, SparseError> {
    symmetrize_pattern_on(a, Exec::Sequential)
}

/// [`symmetrize_pattern`] on an executor: a two-pass count-then-fill
/// transpose merge.
///
/// Pass 1 counts each merged row's length in parallel; a sequential
/// prefix sum turns the counts into row pointers; pass 2 re-runs the
/// sorted two-pointer merge of `A.row(i)` and `Aᵀ.row(i)` directly
/// into each row's pre-computed segment. Every row is filled
/// independently at offsets fixed by the prefix sum, so the output is
/// byte-identical for every executor and team size.
pub fn symmetrize_pattern_on(a: &CsrMatrix, exec: Exec<'_>) -> Result<CsrMatrix, SparseError> {
    if !a.is_square() {
        return Err(SparseError::NotSquare {
            nrows: a.nrows(),
            ncols: a.ncols(),
        });
    }
    let n = a.nrows();
    let t = a.transpose();
    // Pass 1: merged row lengths.
    let mut rowptr = vec![0usize; n + 1];
    {
        let counts = SliceWriter::new(&mut rowptr[1..]);
        exec.parallel_for(n, PAR_ROW_GRAIN, |rows| {
            // SAFETY: parallel_for chunks are pairwise-disjoint row
            // ranges, so these count windows never overlap.
            let out = unsafe { counts.slice_mut(rows.clone()) };
            for (slot, i) in out.iter_mut().zip(rows) {
                *slot = merged_row_len(a.row(i).0, t.row(i).0);
            }
        });
    }
    // Prefix sum: counts become row pointers.
    for i in 0..n {
        rowptr[i + 1] += rowptr[i];
    }
    let nnz = rowptr[n];
    // Pass 2: merge each row into its segment.
    let mut colidx: Vec<ColIdx> = vec![0; nnz];
    {
        let writer = SliceWriter::new(&mut colidx);
        let rowptr = &rowptr;
        exec.parallel_for(n, PAR_ROW_GRAIN, |rows| {
            for i in rows {
                // SAFETY: row segments [rowptr[i], rowptr[i+1]) are
                // pairwise disjoint and rows are partitioned across
                // chunks, so no two lanes write the same window.
                let out = unsafe { writer.slice_mut(rowptr[i]..rowptr[i + 1]) };
                merge_rows_into(out, a.row(i).0, t.row(i).0);
            }
        });
    }
    Ok(CsrMatrix::from_parts_unchecked(
        n,
        n,
        rowptr,
        colidx,
        vec![1.0; nnz],
    ))
}

/// Number of distinct column indices in the union of two sorted rows.
fn merged_row_len(ca: &[ColIdx], cb: &[ColIdx]) -> usize {
    let (mut p, mut q, mut len) = (0, 0, 0);
    while p < ca.len() && q < cb.len() {
        match ca[p].cmp(&cb[q]) {
            std::cmp::Ordering::Less => p += 1,
            std::cmp::Ordering::Greater => q += 1,
            std::cmp::Ordering::Equal => {
                p += 1;
                q += 1;
            }
        }
        len += 1;
    }
    len + (ca.len() - p) + (cb.len() - q)
}

/// Two-pointer merge of two sorted rows into `out`, which must have
/// exactly [`merged_row_len`] elements.
fn merge_rows_into(out: &mut [ColIdx], ca: &[ColIdx], cb: &[ColIdx]) {
    let (mut p, mut q, mut k) = (0, 0, 0);
    while p < ca.len() && q < cb.len() {
        match ca[p].cmp(&cb[q]) {
            std::cmp::Ordering::Less => {
                out[k] = ca[p];
                p += 1;
            }
            std::cmp::Ordering::Greater => {
                out[k] = cb[q];
                q += 1;
            }
            std::cmp::Ordering::Equal => {
                out[k] = ca[p];
                p += 1;
                q += 1;
            }
        }
        k += 1;
    }
    for &c in &ca[p..] {
        out[k] = c;
        k += 1;
    }
    for &c in &cb[q..] {
        out[k] = c;
        k += 1;
    }
    debug_assert_eq!(k, out.len());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    #[test]
    fn symmetric_matrix_detected() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push_symmetric(0, 1, 2.0);
        coo.push(2, 2, 1.0);
        let a = CsrMatrix::from_coo(&coo);
        assert!(is_structurally_symmetric(&a));
    }

    #[test]
    fn unsymmetric_matrix_detected() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 1, 2.0);
        coo.push(2, 2, 1.0);
        let a = CsrMatrix::from_coo(&coo);
        assert!(!is_structurally_symmetric(&a));
    }

    #[test]
    fn rectangular_is_not_symmetric() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 0, 1.0);
        let a = CsrMatrix::from_coo(&coo);
        assert!(!is_structurally_symmetric(&a));
    }

    #[test]
    fn symmetrize_adds_transpose_entries() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 1, 2.0);
        coo.push(1, 2, 3.0);
        coo.push(0, 0, 1.0);
        let a = CsrMatrix::from_coo(&coo);
        let s = symmetrize_pattern(&a).unwrap();
        s.validate().unwrap();
        assert!(is_structurally_symmetric(&s));
        assert_eq!(s.nnz(), 5); // (0,0), (0,1), (1,0), (1,2), (2,1)
        assert!(s.get(1, 0).is_some());
        assert!(s.get(2, 1).is_some());
    }

    #[test]
    fn symmetrize_is_idempotent_on_symmetric_patterns() {
        let mut coo = CooMatrix::new(4, 4);
        coo.push_symmetric(0, 3, 1.0);
        coo.push_symmetric(1, 2, 1.0);
        coo.push(2, 2, 1.0);
        let a = CsrMatrix::from_coo(&coo);
        let s = symmetrize_pattern(&a).unwrap();
        assert!(s.same_pattern(&a));
    }

    #[test]
    fn symmetrize_rejects_rectangular() {
        let coo = CooMatrix::new(2, 3);
        let a = CsrMatrix::from_coo(&coo);
        assert!(symmetrize_pattern(&a).is_err());
    }

    #[test]
    fn parallel_symmetrize_matches_sequential() {
        let mut coo = CooMatrix::new(200, 200);
        // Deterministic scattered unsymmetric pattern.
        let mut state = 0x9e3779b97f4a7c15u64;
        for i in 0..200usize {
            for _ in 0..6 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % 200;
                coo.push(i, j, 1.0);
            }
        }
        let a = CsrMatrix::from_coo(&coo);
        let seq = symmetrize_pattern(&a).unwrap();
        let registry = telemetry::Registry::new_arc();
        for size in [1usize, 2, 4] {
            let t = team::ThreadTeam::new_in(&registry, size);
            let par = symmetrize_pattern_on(&a, Exec::Team(&t)).unwrap();
            assert_eq!(seq.rowptr(), par.rowptr(), "team size {size}");
            assert_eq!(seq.colidx(), par.colidx(), "team size {size}");
        }
    }
}
