use crate::{ColIdx, CsrMatrix, SparseError};

/// True if the sparsity pattern of a square matrix is symmetric
/// (an entry at `(i, j)` implies an entry at `(j, i)`; values are
/// ignored).
pub fn is_structurally_symmetric(a: &CsrMatrix) -> bool {
    if !a.is_square() {
        return false;
    }
    let t = a.transpose();
    a.rowptr() == t.rowptr() && a.colidx() == t.colidx()
}

/// The structural symmetrisation `A + Aᵀ` (pattern only, values 1.0).
///
/// The symmetric reorderings in the paper (RCM, AMD, ND, GP) operate on
/// the undirected graph of a structurally symmetric matrix; for
/// unsymmetric inputs, §3.3 prescribes using the pattern of `A + Aᵀ`.
/// Diagonal entries are preserved as-is; the result has a symmetric
/// pattern by construction.
pub fn symmetrize_pattern(a: &CsrMatrix) -> Result<CsrMatrix, SparseError> {
    if !a.is_square() {
        return Err(SparseError::NotSquare {
            nrows: a.nrows(),
            ncols: a.ncols(),
        });
    }
    let n = a.nrows();
    let t = a.transpose();
    // Merge row i of A and row i of Aᵀ (both sorted).
    let mut rowptr = Vec::with_capacity(n + 1);
    rowptr.push(0usize);
    let mut colidx: Vec<ColIdx> = Vec::with_capacity(a.nnz() + a.nnz() / 2);
    for i in 0..n {
        let (ca, _) = a.row(i);
        let (cb, _) = t.row(i);
        let (mut p, mut q) = (0, 0);
        while p < ca.len() && q < cb.len() {
            match ca[p].cmp(&cb[q]) {
                std::cmp::Ordering::Less => {
                    colidx.push(ca[p]);
                    p += 1;
                }
                std::cmp::Ordering::Greater => {
                    colidx.push(cb[q]);
                    q += 1;
                }
                std::cmp::Ordering::Equal => {
                    colidx.push(ca[p]);
                    p += 1;
                    q += 1;
                }
            }
        }
        colidx.extend_from_slice(&ca[p..]);
        colidx.extend_from_slice(&cb[q..]);
        rowptr.push(colidx.len());
    }
    let nnz = colidx.len();
    Ok(CsrMatrix::from_parts_unchecked(
        n,
        n,
        rowptr,
        colidx,
        vec![1.0; nnz],
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    #[test]
    fn symmetric_matrix_detected() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push_symmetric(0, 1, 2.0);
        coo.push(2, 2, 1.0);
        let a = CsrMatrix::from_coo(&coo);
        assert!(is_structurally_symmetric(&a));
    }

    #[test]
    fn unsymmetric_matrix_detected() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 1, 2.0);
        coo.push(2, 2, 1.0);
        let a = CsrMatrix::from_coo(&coo);
        assert!(!is_structurally_symmetric(&a));
    }

    #[test]
    fn rectangular_is_not_symmetric() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 0, 1.0);
        let a = CsrMatrix::from_coo(&coo);
        assert!(!is_structurally_symmetric(&a));
    }

    #[test]
    fn symmetrize_adds_transpose_entries() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 1, 2.0);
        coo.push(1, 2, 3.0);
        coo.push(0, 0, 1.0);
        let a = CsrMatrix::from_coo(&coo);
        let s = symmetrize_pattern(&a).unwrap();
        s.validate().unwrap();
        assert!(is_structurally_symmetric(&s));
        assert_eq!(s.nnz(), 5); // (0,0), (0,1), (1,0), (1,2), (2,1)
        assert!(s.get(1, 0).is_some());
        assert!(s.get(2, 1).is_some());
    }

    #[test]
    fn symmetrize_is_idempotent_on_symmetric_patterns() {
        let mut coo = CooMatrix::new(4, 4);
        coo.push_symmetric(0, 3, 1.0);
        coo.push_symmetric(1, 2, 1.0);
        coo.push(2, 2, 1.0);
        let a = CsrMatrix::from_coo(&coo);
        let s = symmetrize_pattern(&a).unwrap();
        assert!(s.same_pattern(&a));
    }

    #[test]
    fn symmetrize_rejects_rectangular() {
        let coo = CooMatrix::new(2, 3);
        let a = CsrMatrix::from_coo(&coo);
        assert!(symmetrize_pattern(&a).is_err());
    }
}
