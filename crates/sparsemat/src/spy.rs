//! ASCII "spy plot" rendering of sparsity patterns.
//!
//! Figure 1 of the paper shows sparsity patterns of matrices before and
//! after reordering. This module renders the same view in the terminal:
//! the matrix is divided into a grid of character cells and each cell is
//! shaded by the density of nonzeros falling inside it.

use crate::CsrMatrix;

/// Options controlling [`spy_string`] rendering.
#[derive(Debug, Clone, Copy)]
pub struct SpyOptions {
    /// Output width in character cells.
    pub width: usize,
    /// Output height in character cells.
    pub height: usize,
    /// Draw a border box around the plot.
    pub border: bool,
}

impl Default for SpyOptions {
    fn default() -> Self {
        SpyOptions {
            width: 48,
            height: 24,
            border: true,
        }
    }
}

/// Shading ramp from empty to dense.
const SHADES: [char; 5] = [' ', '.', ':', 'o', '@'];

/// Render the sparsity pattern of `a` as an ASCII density plot.
pub fn spy_string(a: &CsrMatrix, opts: &SpyOptions) -> String {
    let w = opts.width.max(1);
    let h = opts.height.max(1);
    let mut cells = vec![0usize; w * h];
    let rscale = h as f64 / a.nrows().max(1) as f64;
    let cscale = w as f64 / a.ncols().max(1) as f64;
    for i in 0..a.nrows() {
        let ci = ((i as f64 * rscale) as usize).min(h - 1);
        let (cols, _) = a.row(i);
        for &j in cols {
            let cj = ((j as f64 * cscale) as usize).min(w - 1);
            cells[ci * w + cj] += 1;
        }
    }
    // Cell capacity: nonzeros a cell would hold if the matrix were full.
    let cell_rows = (a.nrows() as f64 / h as f64).max(1.0);
    let cell_cols = (a.ncols() as f64 / w as f64).max(1.0);
    let capacity = cell_rows * cell_cols;

    let mut out = String::with_capacity((w + 3) * (h + 2));
    if opts.border {
        out.push('+');
        out.extend(std::iter::repeat_n('-', w));
        out.push('+');
        out.push('\n');
    }
    for r in 0..h {
        if opts.border {
            out.push('|');
        }
        for c in 0..w {
            let count = cells[r * w + c];
            let ch = if count == 0 {
                SHADES[0]
            } else {
                let density = (count as f64 / capacity).min(1.0);
                // Map (0, 1] onto the nonzero shades.
                let levels = SHADES.len() - 1;
                let idx = 1 + ((density * levels as f64) as usize).min(levels - 1);
                SHADES[idx]
            };
            out.push(ch);
        }
        if opts.border {
            out.push('|');
        }
        out.push('\n');
    }
    if opts.border {
        out.push('+');
        out.extend(std::iter::repeat_n('-', w));
        out.push('+');
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    #[test]
    fn diagonal_matrix_renders_diagonal() {
        let a = CsrMatrix::identity(10);
        let opts = SpyOptions {
            width: 10,
            height: 10,
            border: false,
        };
        let s = spy_string(&a, &opts);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 10);
        for (r, line) in lines.iter().enumerate() {
            let chars: Vec<char> = line.chars().collect();
            assert_eq!(chars.len(), 10);
            assert_ne!(chars[r], ' ', "diagonal cell ({r},{r}) should be shaded");
            // Off-diagonal cells in this row are empty.
            for (c, &ch) in chars.iter().enumerate() {
                if c != r {
                    assert_eq!(ch, ' ');
                }
            }
        }
    }

    #[test]
    fn empty_matrix_renders_blank() {
        let coo = CooMatrix::new(5, 5);
        let a = CsrMatrix::from_coo(&coo);
        let opts = SpyOptions {
            width: 4,
            height: 4,
            border: false,
        };
        let s = spy_string(&a, &opts);
        assert!(s.lines().all(|l| l.chars().all(|c| c == ' ')));
    }

    #[test]
    fn border_is_drawn() {
        let a = CsrMatrix::identity(4);
        let opts = SpyOptions {
            width: 4,
            height: 2,
            border: true,
        };
        let s = spy_string(&a, &opts);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "+----+");
        assert!(lines[1].starts_with('|') && lines[1].ends_with('|'));
        assert_eq!(lines[3], "+----+");
    }

    #[test]
    fn denser_cells_get_darker_shades() {
        // One very dense block in the top-left of a mostly empty matrix.
        let mut coo = CooMatrix::new(100, 100);
        for i in 0..10 {
            for j in 0..10 {
                coo.push(i, j, 1.0);
            }
        }
        coo.push(99, 99, 1.0);
        let a = CsrMatrix::from_coo(&coo);
        let opts = SpyOptions {
            width: 10,
            height: 10,
            border: false,
        };
        let s = spy_string(&a, &opts);
        let first = s.lines().next().unwrap().chars().next().unwrap();
        assert_eq!(first, '@', "a full cell should use the densest shade");
        let last_line: Vec<char> = s.lines().last().unwrap().chars().collect();
        assert_eq!(
            last_line[9], '.',
            "a single nonzero uses the lightest shade"
        );
    }
}
