use std::fmt;

/// Errors produced while constructing, converting or parsing sparse
/// matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// An entry's row or column index is outside the matrix dimensions.
    IndexOutOfBounds {
        row: usize,
        col: usize,
        nrows: usize,
        ncols: usize,
    },
    /// A CSR/CSC structural invariant is violated (non-monotone pointers,
    /// unsorted or duplicate column indices, length mismatches).
    InvalidStructure(String),
    /// The operation requires a square matrix.
    NotSquare { nrows: usize, ncols: usize },
    /// The operation requires a structurally symmetric matrix.
    NotSymmetric,
    /// A Matrix Market file could not be parsed.
    Parse { line: usize, message: String },
    /// An I/O error occurred while reading or writing a file.
    Io(String),
    /// The matrix dimensions exceed what 32-bit column indices can address.
    TooLarge { dim: usize },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds {
                row,
                col,
                nrows,
                ncols,
            } => write!(
                f,
                "entry ({row}, {col}) out of bounds for {nrows}x{ncols} matrix"
            ),
            SparseError::InvalidStructure(msg) => write!(f, "invalid sparse structure: {msg}"),
            SparseError::NotSquare { nrows, ncols } => {
                write!(f, "operation requires a square matrix, got {nrows}x{ncols}")
            }
            SparseError::NotSymmetric => {
                write!(f, "operation requires a structurally symmetric matrix")
            }
            SparseError::Parse { line, message } => {
                write!(f, "matrix market parse error at line {line}: {message}")
            }
            SparseError::Io(msg) => write!(f, "i/o error: {msg}"),
            SparseError::TooLarge { dim } => {
                write!(f, "dimension {dim} exceeds the 32-bit column index limit")
            }
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SparseError::IndexOutOfBounds {
            row: 5,
            col: 2,
            nrows: 3,
            ncols: 3,
        };
        assert!(e.to_string().contains("(5, 2)"));
        assert!(e.to_string().contains("3x3"));

        let e = SparseError::NotSquare { nrows: 2, ncols: 4 };
        assert!(e.to_string().contains("2x4"));

        let e = SparseError::Parse {
            line: 10,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 10"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: SparseError = io.into();
        assert!(matches!(e, SparseError::Io(_)));
    }
}
