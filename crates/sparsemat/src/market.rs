//! Matrix Market (`.mtx`) coordinate-format reader and writer.
//!
//! The paper's dataset is distributed in Matrix Market form; this module
//! implements the subset of the format the study needs: `matrix
//! coordinate` with `real`, `integer` or `pattern` fields and `general`
//! or `symmetric` symmetry. Symmetric files are expanded on read exactly
//! as the paper describes (§4.1): every off-diagonal entry inserts two
//! nonzeros.

use crate::{CooMatrix, CsrMatrix, SparseError};
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

/// Parsed Matrix Market header information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarketHeader {
    /// Value field: `real`, `integer` or `pattern`.
    pub field: MarketField,
    /// Symmetry: `general` or `symmetric`.
    pub symmetry: MarketSymmetry,
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Number of entry lines in the file (before symmetric expansion).
    pub entries: usize,
}

/// Matrix Market value field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarketField {
    /// Real-valued entries.
    Real,
    /// Integer-valued entries (read as `f64`).
    Integer,
    /// Pattern-only entries (values set to 1.0).
    Pattern,
}

/// Matrix Market symmetry kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarketSymmetry {
    /// All entries stored explicitly.
    General,
    /// Only the lower triangle stored; expanded on read.
    Symmetric,
}

fn parse_error(line: usize, message: impl Into<String>) -> SparseError {
    SparseError::Parse {
        line,
        message: message.into(),
    }
}

/// Read a Matrix Market file from disk into CSR form.
pub fn read_matrix_market(path: &Path) -> Result<(CsrMatrix, MarketHeader), SparseError> {
    let file = std::fs::File::open(path)?;
    read_matrix_market_impl(BufReader::new(file))
}

/// Parse a Matrix Market document held in memory.
pub fn read_matrix_market_str(text: &str) -> Result<(CsrMatrix, MarketHeader), SparseError> {
    read_matrix_market_impl(BufReader::new(text.as_bytes()))
}

fn read_matrix_market_impl<R: BufRead>(
    mut reader: R,
) -> Result<(CsrMatrix, MarketHeader), SparseError> {
    let mut line = String::new();
    let mut lineno = 0usize;

    // Banner.
    lineno += 1;
    if reader.read_line(&mut line)? == 0 {
        return Err(parse_error(lineno, "empty file"));
    }
    let banner: Vec<String> = line.split_whitespace().map(str::to_lowercase).collect();
    if banner.len() < 5 || banner[0] != "%%matrixmarket" || banner[1] != "matrix" {
        return Err(parse_error(lineno, "missing %%MatrixMarket matrix banner"));
    }
    if banner[2] != "coordinate" {
        return Err(parse_error(
            lineno,
            format!(
                "unsupported format '{}': only coordinate is supported",
                banner[2]
            ),
        ));
    }
    let field = match banner[3].as_str() {
        "real" => MarketField::Real,
        "integer" => MarketField::Integer,
        "pattern" => MarketField::Pattern,
        other => return Err(parse_error(lineno, format!("unsupported field '{other}'"))),
    };
    let symmetry = match banner[4].as_str() {
        "general" => MarketSymmetry::General,
        "symmetric" => MarketSymmetry::Symmetric,
        other => {
            return Err(parse_error(
                lineno,
                format!("unsupported symmetry '{other}'"),
            ))
        }
    };

    // Size line (skipping comments and blanks).
    let (nrows, ncols, entries) = loop {
        line.clear();
        lineno += 1;
        if reader.read_line(&mut line)? == 0 {
            return Err(parse_error(lineno, "missing size line"));
        }
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let nrows: usize = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| parse_error(lineno, "bad row count"))?;
        let ncols: usize = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| parse_error(lineno, "bad column count"))?;
        let entries: usize = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| parse_error(lineno, "bad entry count"))?;
        break (nrows, ncols, entries);
    };

    let mut coo = CooMatrix::with_capacity(
        nrows,
        ncols,
        if symmetry == MarketSymmetry::Symmetric {
            entries * 2
        } else {
            entries
        },
    );
    let mut seen = 0usize;
    while seen < entries {
        line.clear();
        lineno += 1;
        if reader.read_line(&mut line)? == 0 {
            return Err(parse_error(
                lineno,
                format!("expected {entries} entries, found {seen}"),
            ));
        }
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let r: usize = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| parse_error(lineno, "bad row index"))?;
        let c: usize = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| parse_error(lineno, "bad column index"))?;
        if r == 0 || c == 0 || r > nrows || c > ncols {
            return Err(parse_error(
                lineno,
                format!("index ({r}, {c}) out of bounds (1-based) for {nrows}x{ncols}"),
            ));
        }
        let v = match field {
            MarketField::Pattern => 1.0,
            MarketField::Real | MarketField::Integer => it
                .next()
                .and_then(|t| t.parse::<f64>().ok())
                .ok_or_else(|| parse_error(lineno, "bad value"))?,
        };
        match symmetry {
            MarketSymmetry::General => coo.push(r - 1, c - 1, v),
            MarketSymmetry::Symmetric => coo.push_symmetric(r - 1, c - 1, v),
        }
        seen += 1;
    }

    let header = MarketHeader {
        field,
        symmetry,
        nrows,
        ncols,
        entries,
    };
    Ok((CsrMatrix::from_coo(&coo), header))
}

/// Write a matrix to disk in `general real coordinate` Matrix Market form.
pub fn write_matrix_market(path: &Path, a: &CsrMatrix) -> Result<(), SparseError> {
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "{} {} {}", a.nrows(), a.ncols(), a.nnz())?;
    for (i, j, v) in a.iter() {
        writeln!(w, "{} {} {v}", i + 1, j + 1)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_general_real() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    3 3 4\n\
                    1 1 2.5\n\
                    2 3 -1\n\
                    3 1 4.0\n\
                    3 3 1e2\n";
        let (a, h) = read_matrix_market_str(text).unwrap();
        assert_eq!(h.nrows, 3);
        assert_eq!(h.field, MarketField::Real);
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.get(0, 0), Some(2.5));
        assert_eq!(a.get(1, 2), Some(-1.0));
        assert_eq!(a.get(2, 2), Some(100.0));
    }

    #[test]
    fn parse_symmetric_expands() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    3 3 3\n\
                    1 1 1.0\n\
                    2 1 5.0\n\
                    3 3 2.0\n";
        let (a, h) = read_matrix_market_str(text).unwrap();
        assert_eq!(h.symmetry, MarketSymmetry::Symmetric);
        assert_eq!(a.nnz(), 4); // diagonal entries not doubled
        assert_eq!(a.get(0, 1), Some(5.0));
        assert_eq!(a.get(1, 0), Some(5.0));
    }

    #[test]
    fn parse_pattern() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    2 2 2\n\
                    1 2\n\
                    2 1\n";
        let (a, h) = read_matrix_market_str(text).unwrap();
        assert_eq!(h.field, MarketField::Pattern);
        assert_eq!(a.get(0, 1), Some(1.0));
        assert_eq!(a.get(1, 0), Some(1.0));
    }

    #[test]
    fn rejects_bad_banner_and_indices() {
        assert!(read_matrix_market_str("nonsense\n1 1 0\n").is_err());
        assert!(read_matrix_market_str(
            "%%MatrixMarket matrix array real general\n2 2 1\n1 1 1.0\n"
        )
        .is_err());
        // 0-based index is invalid (format is 1-based).
        assert!(read_matrix_market_str(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n"
        )
        .is_err());
        // Out-of-range index.
        assert!(read_matrix_market_str(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n"
        )
        .is_err());
        // Truncated entries.
        assert!(read_matrix_market_str(
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"
        )
        .is_err());
    }

    #[test]
    fn write_read_roundtrip() {
        let mut coo = CooMatrix::new(3, 4);
        coo.push(0, 3, 1.5);
        coo.push(2, 0, -2.25);
        coo.push(1, 1, 7.0);
        let a = CsrMatrix::from_coo(&coo);

        let dir = std::env::temp_dir().join("sparsemat_mm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.mtx");
        write_matrix_market(&path, &a).unwrap();
        let (b, h) = read_matrix_market(&path).unwrap();
        assert_eq!(h.nrows, 3);
        assert_eq!(h.ncols, 4);
        assert_eq!(b, a);
        std::fs::remove_file(&path).ok();
    }
}
