use crate::SparseError;

/// A permutation of `n` indices, stored in both directions.
///
/// Reordering algorithms naturally produce an *order*: the sequence of
/// old indices in their new positions (`new_to_old`). Applying a
/// permutation to CSR column indices instead needs the inverse mapping
/// (`old_to_new`). Both are kept so either application is O(1) per
/// element.
///
/// Conventions:
/// - `new_to_old[k]` is the old index of the element placed at new
///   position `k` (the "permutation vector" of the reordering
///   literature).
/// - `old_to_new[i]` is the new position of old index `i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    new_to_old: Vec<u32>,
    old_to_new: Vec<u32>,
}

impl Permutation {
    /// The identity permutation on `n` indices.
    pub fn identity(n: usize) -> Self {
        let v: Vec<u32> = (0..n as u32).collect();
        Permutation {
            new_to_old: v.clone(),
            old_to_new: v,
        }
    }

    /// Build from an order vector: `order[k]` = old index at new position `k`.
    ///
    /// Returns an error if `order` is not a permutation of `0..order.len()`.
    pub fn from_new_to_old(order: Vec<u32>) -> Result<Self, SparseError> {
        let n = order.len();
        let mut inv = vec![u32::MAX; n];
        for (new, &old) in order.iter().enumerate() {
            let old = old as usize;
            if old >= n {
                return Err(SparseError::InvalidStructure(format!(
                    "permutation entry {old} out of range for length {n}"
                )));
            }
            if inv[old] != u32::MAX {
                return Err(SparseError::InvalidStructure(format!(
                    "duplicate permutation entry {old}"
                )));
            }
            inv[old] = new as u32;
        }
        Ok(Permutation {
            new_to_old: order,
            old_to_new: inv,
        })
    }

    /// Build from an inverse-order vector: `pos[i]` = new position of old
    /// index `i`.
    pub fn from_old_to_new(pos: Vec<u32>) -> Result<Self, SparseError> {
        let p = Permutation::from_new_to_old(pos)?;
        Ok(Permutation {
            new_to_old: p.old_to_new,
            old_to_new: p.new_to_old,
        })
    }

    /// Length of the permutation.
    pub fn len(&self) -> usize {
        self.new_to_old.len()
    }

    /// True for the zero-length permutation.
    pub fn is_empty(&self) -> bool {
        self.new_to_old.is_empty()
    }

    /// Old index placed at new position `new`.
    #[inline]
    pub fn new_to_old(&self, new: usize) -> usize {
        self.new_to_old[new] as usize
    }

    /// New position of old index `old`.
    #[inline]
    pub fn old_to_new(&self, old: usize) -> usize {
        self.old_to_new[old] as usize
    }

    /// The order vector (`new -> old`).
    pub fn order(&self) -> &[u32] {
        &self.new_to_old
    }

    /// The inverse vector (`old -> new`).
    pub fn inverse_order(&self) -> &[u32] {
        &self.old_to_new
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        Permutation {
            new_to_old: self.old_to_new.clone(),
            old_to_new: self.new_to_old.clone(),
        }
    }

    /// Reverse the order (used to turn Cuthill-McKee into *Reverse*
    /// Cuthill-McKee).
    pub fn reversed(&self) -> Permutation {
        let mut order = self.new_to_old.clone();
        order.reverse();
        Permutation::from_new_to_old(order).expect("reversing preserves validity")
    }

    /// Compose: apply `self` first, then `other` (both permute new
    /// positions). The result maps old indices through both.
    pub fn then(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.len(), other.len(), "length mismatch in composition");
        let n = self.len();
        // final new position k holds other.new_to_old(k) in self's
        // numbering, which is self.new_to_old(...) in the original.
        let mut order = Vec::with_capacity(n);
        for k in 0..n {
            order.push(self.new_to_old[other.new_to_old(k)]);
        }
        Permutation::from_new_to_old(order).expect("composition of permutations is a permutation")
    }

    /// True if this is the identity permutation.
    pub fn is_identity(&self) -> bool {
        self.new_to_old
            .iter()
            .enumerate()
            .all(|(i, &v)| i as u32 == v)
    }

    /// Permute a dense slice: `out[new] = data[old]`.
    pub fn apply_to_slice<T: Copy>(&self, data: &[T]) -> Vec<T> {
        assert_eq!(data.len(), self.len(), "slice length mismatch");
        self.new_to_old
            .iter()
            .map(|&old| data[old as usize])
            .collect()
    }

    /// Apply the inverse permutation to a dense slice:
    /// `out[old] = data[new]` where `new = old_to_new[old]`.
    ///
    /// This undoes [`Permutation::apply_to_slice`], which is how a
    /// serving layer returns an SpMV result computed in reordered index
    /// space back to the caller's original ordering.
    pub fn apply_inverse_to_slice<T: Copy>(&self, data: &[T]) -> Vec<T> {
        assert_eq!(data.len(), self.len(), "slice length mismatch");
        self.old_to_new
            .iter()
            .map(|&new| data[new as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        let p = Permutation::identity(4);
        assert!(p.is_identity());
        assert_eq!(p.len(), 4);
        for i in 0..4 {
            assert_eq!(p.new_to_old(i), i);
            assert_eq!(p.old_to_new(i), i);
        }
    }

    #[test]
    fn from_order_and_inverse_agree() {
        let p = Permutation::from_new_to_old(vec![2, 0, 1]).unwrap();
        assert_eq!(p.new_to_old(0), 2);
        assert_eq!(p.old_to_new(2), 0);
        let inv = p.inverse();
        assert_eq!(inv.new_to_old(0), p.old_to_new(0));
        assert!(p.then(&inv.inverse().inverse()).len() == 3);
    }

    #[test]
    fn invalid_orders_rejected() {
        assert!(Permutation::from_new_to_old(vec![0, 0]).is_err());
        assert!(Permutation::from_new_to_old(vec![0, 5]).is_err());
        assert!(Permutation::from_old_to_new(vec![1, 1, 0]).is_err());
    }

    #[test]
    fn reversed_reverses_order() {
        let p = Permutation::from_new_to_old(vec![2, 0, 1]).unwrap();
        let r = p.reversed();
        assert_eq!(r.order(), &[1, 0, 2]);
    }

    #[test]
    fn compose_applies_in_sequence() {
        // self: order [1,2,0]; other: reverse [2,1,0]
        let p = Permutation::from_new_to_old(vec![1, 2, 0]).unwrap();
        let q = Permutation::from_new_to_old(vec![2, 1, 0]).unwrap();
        let c = p.then(&q);
        // position k of c = p.new_to_old(q.new_to_old(k))
        assert_eq!(c.order(), &[0, 2, 1]);
    }

    #[test]
    fn apply_to_slice_permutes_dense_data() {
        let p = Permutation::from_new_to_old(vec![2, 0, 1]).unwrap();
        let data = [10.0, 20.0, 30.0];
        assert_eq!(p.apply_to_slice(&data), vec![30.0, 10.0, 20.0]);
    }

    #[test]
    fn apply_inverse_undoes_apply() {
        let p = Permutation::from_new_to_old(vec![3, 1, 0, 2]).unwrap();
        let data = [1.5, 2.5, 3.5, 4.5];
        let permuted = p.apply_to_slice(&data);
        assert_eq!(p.apply_inverse_to_slice(&permuted), data.to_vec());
        // And the other way round.
        let unpermuted = p.apply_inverse_to_slice(&data);
        assert_eq!(p.apply_to_slice(&unpermuted), data.to_vec());
    }

    #[test]
    fn inverse_of_inverse_is_original() {
        let p = Permutation::from_new_to_old(vec![3, 1, 0, 2]).unwrap();
        assert_eq!(p.inverse().inverse(), p);
    }
}
