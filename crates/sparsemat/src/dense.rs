//! Small dense-vector helpers used by the SpMV harness and the iterative
//! solver examples.

/// An owned dense vector of `f64` with a few BLAS-1 conveniences.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseVector {
    data: Vec<f64>,
}

impl DenseVector {
    /// A vector of `n` zeros.
    pub fn zeros(n: usize) -> Self {
        DenseVector { data: vec![0.0; n] }
    }

    /// A vector of `n` ones.
    pub fn ones(n: usize) -> Self {
        DenseVector { data: vec![1.0; n] }
    }

    /// The vector `[0, 1, 2, ...] / n` — a deterministic, non-constant
    /// input used by the measurement harness so value-dependent bugs in
    /// kernels can't hide behind a constant x.
    pub fn ramp(n: usize) -> Self {
        let scale = if n > 1 { 1.0 / (n as f64 - 1.0) } else { 1.0 };
        DenseVector {
            data: (0..n).map(|i| i as f64 * scale).collect(),
        }
    }

    /// Wrap an existing `Vec`.
    pub fn from_vec(data: Vec<f64>) -> Self {
        DenseVector { data }
    }

    /// Length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Borrow mutably as a slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the inner `Vec`.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }
}

impl std::ops::Index<usize> for DenseVector {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl std::ops::IndexMut<usize> for DenseVector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

/// Dot product of two equally sized slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

/// `y += alpha * x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(DenseVector::zeros(3).as_slice(), &[0.0, 0.0, 0.0]);
        assert_eq!(DenseVector::ones(2).as_slice(), &[1.0, 1.0]);
        let r = DenseVector::ramp(3);
        assert_eq!(r.as_slice(), &[0.0, 0.5, 1.0]);
        assert_eq!(DenseVector::ramp(1).as_slice(), &[0.0]);
        assert!(DenseVector::zeros(0).is_empty());
    }

    #[test]
    fn indexing() {
        let mut v = DenseVector::zeros(3);
        v[1] = 5.0;
        assert_eq!(v[1], 5.0);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn blas1_ops() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        let mut y = [1.0, 1.0, 1.0];
        axpy(2.0, &a, &mut y);
        assert_eq!(y, [3.0, 5.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
