use crate::symmetrize::PAR_ROW_GRAIN;
use crate::{ColIdx, CooMatrix, CscMatrix, Permutation, SparseError};
use std::collections::BTreeMap;
use std::sync::OnceLock;
use team::{Exec, SliceWriter};

/// A single structural edge mutation applied by
/// [`CsrMatrix::apply_delta`].
///
/// The API is structural: `Add` inserts a new stored entry (and is a
/// no-op if the entry already exists — it never overwrites a value),
/// `Remove` deletes a stored entry (no-op if absent). Values of
/// untouched entries are never changed, so
/// `apply_delta(add e); apply_delta(remove e)` round-trips both the
/// pattern and the content hash.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EdgeOp {
    /// Insert entry `(row, col)` with `value` if not already stored.
    Add {
        /// Row index of the entry.
        row: usize,
        /// Column index of the entry.
        col: usize,
        /// Value stored iff the entry did not exist.
        value: f64,
    },
    /// Delete entry `(row, col)` if stored.
    Remove {
        /// Row index of the entry.
        row: usize,
        /// Column index of the entry.
        col: usize,
    },
}

impl EdgeOp {
    fn cell(&self) -> (usize, usize) {
        match *self {
            EdgeOp::Add { row, col, .. } => (row, col),
            EdgeOp::Remove { row, col } => (row, col),
        }
    }
}

/// What a [`CsrMatrix::apply_delta`] call actually did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeltaReport {
    /// Entries inserted.
    pub added: usize,
    /// Entries deleted.
    pub removed: usize,
    /// Ops that changed nothing (add of an existing entry, remove of an
    /// absent one).
    pub noops: usize,
    /// Sorted, deduplicated indices touched by the *effective* ops:
    /// **both** endpoints of every inserted/deleted entry. Including the
    /// column endpoint is what lets component-structured consumers
    /// conclude that a component containing no touched index is
    /// structurally unchanged in the (symmetrised) ordering graph.
    pub touched_rows: Vec<u32>,
}

impl DeltaReport {
    /// True if the batch changed the stored structure at all.
    pub fn changed(&self) -> bool {
        self.added + self.removed > 0
    }
}

/// One recorded mutation hop: the content hash of the matrix this one
/// was derived from, plus the indices the delta touched (see
/// [`DeltaReport::touched_rows`]). Hops are kept oldest-first.
#[derive(Debug, Clone, PartialEq)]
pub struct LineageHop {
    /// `content_hash()` of the matrix *before* the delta was applied.
    pub parent: u128,
    /// Endpoints of every effective op in that delta, sorted, deduped.
    pub touched: Vec<u32>,
}

/// Bound on the recorded ancestor chain: hops older than this are
/// dropped, so a delta-aware cache probes at most this many ancestors.
pub const LINEAGE_CAP: usize = 8;

/// A sparse matrix in compressed sparse row (CSR) format.
///
/// Nonzeros are grouped by row; within each row, column indices are
/// strictly increasing (no duplicates). `rowptr` has `nrows + 1`
/// entries, with `rowptr[i]..rowptr[i+1]` delimiting the nonzeros of
/// row `i` in `colidx`/`values`. Column indices are 32-bit and values
/// are `f64`, matching the storage convention of the paper (§4.1).
///
/// The content hash is memoised and every mutating path
/// ([`CsrMatrix::values_mut`], [`CsrMatrix::apply_delta`]) invalidates
/// the memo, so a stale hash can never be served. Equality compares
/// content only (shape, pattern, values) — never the memo or the
/// mutation lineage.
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    rowptr: Vec<usize>,
    colidx: Vec<ColIdx>,
    values: Vec<f64>,
    /// Memoised `content_hash`; reset on every mutation.
    hash_memo: OnceLock<u128>,
    /// Recent mutation ancestry, oldest hop first, at most
    /// [`LINEAGE_CAP`] entries.
    lineage: Vec<LineageHop>,
}

impl PartialEq for CsrMatrix {
    fn eq(&self, other: &Self) -> bool {
        self.nrows == other.nrows
            && self.ncols == other.ncols
            && self.rowptr == other.rowptr
            && self.colidx == other.colidx
            && self.values == other.values
    }
}

impl CsrMatrix {
    /// The one true constructor behind every building path: fresh memo,
    /// empty lineage.
    fn new_raw(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<usize>,
        colidx: Vec<ColIdx>,
        values: Vec<f64>,
    ) -> Self {
        CsrMatrix {
            nrows,
            ncols,
            rowptr,
            colidx,
            values,
            hash_memo: OnceLock::new(),
            lineage: Vec::new(),
        }
    }

    /// Construct from raw parts, validating every structural invariant.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<usize>,
        colidx: Vec<ColIdx>,
        values: Vec<f64>,
    ) -> Result<Self, SparseError> {
        if ncols > u32::MAX as usize {
            return Err(SparseError::TooLarge { dim: ncols });
        }
        if rowptr.len() != nrows + 1 {
            return Err(SparseError::InvalidStructure(format!(
                "rowptr has length {}, expected {}",
                rowptr.len(),
                nrows + 1
            )));
        }
        if rowptr[0] != 0 {
            return Err(SparseError::InvalidStructure(
                "rowptr must start at 0".into(),
            ));
        }
        if *rowptr.last().unwrap() != colidx.len() {
            return Err(SparseError::InvalidStructure(format!(
                "rowptr ends at {} but there are {} column indices",
                rowptr.last().unwrap(),
                colidx.len()
            )));
        }
        if colidx.len() != values.len() {
            return Err(SparseError::InvalidStructure(format!(
                "{} column indices but {} values",
                colidx.len(),
                values.len()
            )));
        }
        for i in 0..nrows {
            if rowptr[i] > rowptr[i + 1] || rowptr[i + 1] > colidx.len() {
                return Err(SparseError::InvalidStructure(format!(
                    "rowptr not monotone at row {i}"
                )));
            }
            let row = &colidx[rowptr[i]..rowptr[i + 1]];
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(SparseError::InvalidStructure(format!(
                        "columns not strictly increasing in row {i}"
                    )));
                }
            }
            if let Some(&last) = row.last() {
                if last as usize >= ncols {
                    return Err(SparseError::IndexOutOfBounds {
                        row: i,
                        col: last as usize,
                        nrows,
                        ncols,
                    });
                }
            }
        }
        Ok(CsrMatrix::new_raw(nrows, ncols, rowptr, colidx, values))
    }

    /// Construct from raw parts without validation.
    ///
    /// Not `unsafe` in the memory-safety sense, but callers must uphold
    /// the CSR invariants or later operations will panic or produce
    /// wrong results. Used on hot internal paths where the structure is
    /// correct by construction.
    pub fn from_parts_unchecked(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<usize>,
        colidx: Vec<ColIdx>,
        values: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(rowptr.len(), nrows + 1);
        debug_assert_eq!(colidx.len(), values.len());
        debug_assert_eq!(*rowptr.last().unwrap(), colidx.len());
        CsrMatrix::new_raw(nrows, ncols, rowptr, colidx, values)
    }

    /// Convert from COO, sorting entries and summing duplicates.
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let nrows = coo.nrows();
        let ncols = coo.ncols();
        let (rows, cols, vals) = coo.triplets();
        let nnz_in = rows.len();

        // Counting sort by row.
        let mut rowcount = vec![0usize; nrows + 1];
        for &r in rows {
            rowcount[r as usize + 1] += 1;
        }
        for i in 0..nrows {
            rowcount[i + 1] += rowcount[i];
        }
        let mut order: Vec<u32> = vec![0; nnz_in];
        let mut next = rowcount.clone();
        for (k, &r) in rows.iter().enumerate() {
            order[next[r as usize]] = k as u32;
            next[r as usize] += 1;
        }

        let mut rowptr = Vec::with_capacity(nrows + 1);
        rowptr.push(0);
        let mut colidx: Vec<ColIdx> = Vec::with_capacity(nnz_in);
        let mut values: Vec<f64> = Vec::with_capacity(nnz_in);
        let mut rowbuf: Vec<(ColIdx, f64)> = Vec::new();
        for i in 0..nrows {
            rowbuf.clear();
            for &k in &order[rowcount[i]..rowcount[i + 1]] {
                rowbuf.push((cols[k as usize], vals[k as usize]));
            }
            rowbuf.sort_unstable_by_key(|&(c, _)| c);
            // Sum duplicates.
            let mut j = 0;
            while j < rowbuf.len() {
                let (c, mut v) = rowbuf[j];
                let mut j2 = j + 1;
                while j2 < rowbuf.len() && rowbuf[j2].0 == c {
                    v += rowbuf[j2].1;
                    j2 += 1;
                }
                colidx.push(c);
                values.push(v);
                j = j2;
            }
            rowptr.push(colidx.len());
        }
        CsrMatrix::new_raw(nrows, ncols, rowptr, colidx, values)
    }

    /// The `n`-by-`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix::new_raw(
            n,
            n,
            (0..=n).collect(),
            (0..n as u32).collect(),
            vec![1.0; n],
        )
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// True if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.nrows == self.ncols
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.colidx.len()
    }

    /// The row pointer array (`nrows + 1` entries).
    #[inline]
    pub fn rowptr(&self) -> &[usize] {
        &self.rowptr
    }

    /// The column index array (`nnz` entries).
    #[inline]
    pub fn colidx(&self) -> &[ColIdx] {
        &self.colidx
    }

    /// The value array (`nnz` entries).
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to values (the pattern stays fixed).
    ///
    /// Handing out mutable access invalidates the memoised content
    /// hash: the next [`CsrMatrix::content_hash`] call rehashes, so no
    /// in-place mutation path can serve a stale hash.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        self.hash_memo.take();
        &mut self.values
    }

    /// Column indices and values of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[ColIdx], &[f64]) {
        let lo = self.rowptr[i];
        let hi = self.rowptr[i + 1];
        (&self.colidx[lo..hi], &self.values[lo..hi])
    }

    /// Number of nonzeros in row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.rowptr[i + 1] - self.rowptr[i]
    }

    /// Iterate over `(row, col, value)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.nrows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter()
                .zip(vals.iter())
                .map(move |(&c, &v)| (i, c as usize, v))
        })
    }

    /// Look up the value at `(row, col)` by binary search, if stored.
    pub fn get(&self, row: usize, col: usize) -> Option<f64> {
        let (cols, vals) = self.row(row);
        cols.binary_search(&(col as ColIdx)).ok().map(|k| vals[k])
    }

    /// Sequential reference SpMV: returns `y = A * x`.
    ///
    /// The parallel kernels live in the `spmv` crate; this is the
    /// correctness oracle they are tested against.
    pub fn spmv_dense(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        let mut y = vec![0.0; self.nrows];
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            let mut sum = 0.0;
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                sum += v * x[c as usize];
            }
            y[i] = sum;
        }
        y
    }

    /// The transpose as a new CSR matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let mut colcount = vec![0usize; self.ncols + 1];
        for &c in &self.colidx {
            colcount[c as usize + 1] += 1;
        }
        for j in 0..self.ncols {
            colcount[j + 1] += colcount[j];
        }
        // After the prefix sum, `colcount` is exactly the transpose's
        // row pointer array.
        let rowptr_t = colcount.clone();
        let mut colidx_t = vec![0 as ColIdx; self.nnz()];
        let mut values_t = vec![0.0; self.nnz()];
        let mut next: Vec<usize> = colcount[..self.ncols].to_vec();
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                let slot = next[c as usize];
                colidx_t[slot] = i as ColIdx;
                values_t[slot] = v;
                next[c as usize] += 1;
            }
        }
        CsrMatrix::new_raw(self.ncols, self.nrows, rowptr_t, colidx_t, values_t)
    }

    /// Convert to compressed sparse column form.
    pub fn to_csc(&self) -> CscMatrix {
        let t = self.transpose();
        CscMatrix::from_transposed_csr(t)
    }

    /// Convert back to COO triplets.
    pub fn to_coo(&self) -> CooMatrix {
        let mut coo = CooMatrix::with_capacity(self.nrows, self.ncols, self.nnz());
        for (i, j, v) in self.iter() {
            coo.push(i, j, v);
        }
        coo
    }

    /// Symmetric permutation `B = P A Pᵀ`: row and column `old` both move
    /// to position `perm.old_to_new(old)`.
    ///
    /// Requires a square matrix (all symmetric reorderings in the paper
    /// operate on square matrices).
    pub fn permute_symmetric(&self, perm: &Permutation) -> Result<CsrMatrix, SparseError> {
        self.permute_symmetric_on(perm, Exec::Sequential)
    }

    /// [`CsrMatrix::permute_symmetric`] on an executor.
    ///
    /// New row `i` is old row `perm.new_to_old(i)`, so the output row
    /// lengths are just the input lengths permuted — no counting pass
    /// is needed. A sequential prefix sum fixes every row's output
    /// segment; rows are then gathered (column map + sort) in parallel
    /// into disjoint segments, which makes the result independent of
    /// the executor. The per-row sort is on unique column keys, so
    /// `sort_unstable` is deterministic.
    pub fn permute_symmetric_on(
        &self,
        perm: &Permutation,
        exec: Exec<'_>,
    ) -> Result<CsrMatrix, SparseError> {
        if !self.is_square() {
            return Err(SparseError::NotSquare {
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        assert_eq!(perm.len(), self.nrows, "permutation length mismatch");
        let n = self.nrows;
        let rowptr = self.permuted_rowptr(perm);
        let nnz = rowptr[n];
        let mut colidx: Vec<ColIdx> = vec![0; nnz];
        let mut values: Vec<f64> = vec![0.0; nnz];
        {
            let cw = SliceWriter::new(&mut colidx);
            let vw = SliceWriter::new(&mut values);
            let rowptr = &rowptr;
            exec.parallel_for(n, PAR_ROW_GRAIN, |rows| {
                let mut rowbuf: Vec<(ColIdx, f64)> = Vec::new();
                for new_i in rows {
                    let old_i = perm.new_to_old(new_i);
                    let (cols, vals) = self.row(old_i);
                    rowbuf.clear();
                    rowbuf.reserve(cols.len());
                    for (&c, &v) in cols.iter().zip(vals.iter()) {
                        rowbuf.push((perm.old_to_new(c as usize) as ColIdx, v));
                    }
                    rowbuf.sort_unstable_by_key(|&(c, _)| c);
                    // SAFETY: row segments are pairwise disjoint and
                    // rows are partitioned across chunks.
                    let co = unsafe { cw.slice_mut(rowptr[new_i]..rowptr[new_i + 1]) };
                    let vo = unsafe { vw.slice_mut(rowptr[new_i]..rowptr[new_i + 1]) };
                    for (k, &(c, v)) in rowbuf.iter().enumerate() {
                        co[k] = c;
                        vo[k] = v;
                    }
                }
            });
        }
        Ok(CsrMatrix::new_raw(n, n, rowptr, colidx, values))
    }

    /// Row-only permutation `B = P A` (used by the unsymmetric Gray
    /// ordering, which leaves columns in place).
    pub fn permute_rows(&self, perm: &Permutation) -> CsrMatrix {
        self.permute_rows_on(perm, Exec::Sequential)
    }

    /// [`CsrMatrix::permute_rows`] on an executor: prefix-sum over the
    /// permuted row lengths, then a parallel per-row memcpy into
    /// disjoint segments.
    pub fn permute_rows_on(&self, perm: &Permutation, exec: Exec<'_>) -> CsrMatrix {
        assert_eq!(perm.len(), self.nrows, "permutation length mismatch");
        let n = self.nrows;
        let rowptr = self.permuted_rowptr(perm);
        let nnz = rowptr[n];
        let mut colidx: Vec<ColIdx> = vec![0; nnz];
        let mut values: Vec<f64> = vec![0.0; nnz];
        {
            let cw = SliceWriter::new(&mut colidx);
            let vw = SliceWriter::new(&mut values);
            let rowptr = &rowptr;
            exec.parallel_for(n, PAR_ROW_GRAIN, |rows| {
                for new_i in rows {
                    let (cols, vals) = self.row(perm.new_to_old(new_i));
                    // SAFETY: row segments are pairwise disjoint and
                    // rows are partitioned across chunks.
                    let co = unsafe { cw.slice_mut(rowptr[new_i]..rowptr[new_i + 1]) };
                    let vo = unsafe { vw.slice_mut(rowptr[new_i]..rowptr[new_i + 1]) };
                    co.copy_from_slice(cols);
                    vo.copy_from_slice(vals);
                }
            });
        }
        CsrMatrix::new_raw(self.nrows, self.ncols, rowptr, colidx, values)
    }

    /// Column-only permutation `B = A Pᵀ` (columns move to their new
    /// positions; rows stay).
    pub fn permute_cols(&self, perm: &Permutation) -> CsrMatrix {
        self.permute_cols_on(perm, Exec::Sequential)
    }

    /// [`CsrMatrix::permute_cols`] on an executor: the row structure is
    /// unchanged, so each row is remapped and re-sorted in place of its
    /// own (pre-existing) segment in parallel.
    pub fn permute_cols_on(&self, perm: &Permutation, exec: Exec<'_>) -> CsrMatrix {
        assert_eq!(perm.len(), self.ncols, "permutation length mismatch");
        let rowptr = self.rowptr.clone();
        let nnz = self.nnz();
        let mut colidx: Vec<ColIdx> = vec![0; nnz];
        let mut values: Vec<f64> = vec![0.0; nnz];
        {
            let cw = SliceWriter::new(&mut colidx);
            let vw = SliceWriter::new(&mut values);
            let rowptr = &rowptr;
            exec.parallel_for(self.nrows, PAR_ROW_GRAIN, |rows| {
                let mut rowbuf: Vec<(ColIdx, f64)> = Vec::new();
                for i in rows {
                    let (cols, vals) = self.row(i);
                    rowbuf.clear();
                    rowbuf.reserve(cols.len());
                    for (&c, &v) in cols.iter().zip(vals.iter()) {
                        rowbuf.push((perm.old_to_new(c as usize) as ColIdx, v));
                    }
                    rowbuf.sort_unstable_by_key(|&(c, _)| c);
                    // SAFETY: row segments are pairwise disjoint and
                    // rows are partitioned across chunks.
                    let co = unsafe { cw.slice_mut(rowptr[i]..rowptr[i + 1]) };
                    let vo = unsafe { vw.slice_mut(rowptr[i]..rowptr[i + 1]) };
                    for (k, &(c, v)) in rowbuf.iter().enumerate() {
                        co[k] = c;
                        vo[k] = v;
                    }
                }
            });
        }
        CsrMatrix::new_raw(self.nrows, self.ncols, rowptr, colidx, values)
    }

    /// Row pointers of a row-permuted copy: the prefix sum of the old
    /// row lengths taken in permuted order.
    fn permuted_rowptr(&self, perm: &Permutation) -> Vec<usize> {
        let n = self.nrows;
        let mut rowptr = vec![0usize; n + 1];
        for new_i in 0..n {
            let old_i = perm.new_to_old(new_i);
            rowptr[new_i + 1] = rowptr[new_i] + (self.rowptr[old_i + 1] - self.rowptr[old_i]);
        }
        rowptr
    }

    /// The structural pattern with all values set to 1.0.
    pub fn pattern(&self) -> CsrMatrix {
        CsrMatrix::new_raw(
            self.nrows,
            self.ncols,
            self.rowptr.clone(),
            self.colidx.clone(),
            vec![1.0; self.nnz()],
        )
    }

    /// True if both matrices have the same sparsity pattern.
    pub fn same_pattern(&self, other: &CsrMatrix) -> bool {
        self.nrows == other.nrows
            && self.ncols == other.ncols
            && self.rowptr == other.rowptr
            && self.colidx == other.colidx
    }

    /// Extract the diagonal (length `min(nrows, ncols)`, zeros where no
    /// entry is stored).
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.nrows.min(self.ncols);
        (0..n).map(|i| self.get(i, i).unwrap_or(0.0)).collect()
    }

    /// Validate all CSR invariants (useful in tests and after unchecked
    /// construction).
    pub fn validate(&self) -> Result<(), SparseError> {
        CsrMatrix::from_parts(
            self.nrows,
            self.ncols,
            self.rowptr.clone(),
            self.colidx.clone(),
            self.values.clone(),
        )
        .map(|_| ())
    }

    /// Bytes needed to store the matrix in CSR form (8-byte values,
    /// 4-byte column indices, 8-byte row pointers), as in the paper's
    /// cache-capacity discussion (§4.1).
    pub fn csr_bytes(&self) -> usize {
        self.values.len() * 8 + self.colidx.len() * 4 + self.rowptr.len() * 8
    }

    /// A stable 128-bit content hash of the matrix.
    ///
    /// Hashes the canonical CSR encoding — dimensions, row pointers,
    /// column indices and value bit patterns. Because CSR is a
    /// canonical form (rows in order, columns strictly increasing,
    /// duplicates already summed), two matrices with the same logical
    /// content hash identically no matter what order their entries
    /// were inserted in. This is the key the `engine` crate's
    /// content-addressed ordering cache is built on.
    ///
    /// The hash is two independent FNV-1a streams over the same byte
    /// sequence, packed into a `u128`; it is stable across runs,
    /// platforms and compiler versions (no `DefaultHasher` seeds).
    ///
    /// Memoised: repeated calls on an unmutated matrix are O(1). Every
    /// mutating path resets the memo.
    pub fn content_hash(&self) -> u128 {
        *self.hash_memo.get_or_init(|| self.compute_content_hash())
    }

    fn compute_content_hash(&self) -> u128 {
        const BASIS_LO: u64 = 0xcbf2_9ce4_8422_2325;
        const BASIS_HI: u64 = 0x6c62_272e_07bb_0142;
        const PRIME: u64 = 0x100_0000_01b3;
        let mut lo = BASIS_LO;
        let mut hi = BASIS_HI ^ 0x517c_c1b7_2722_0a95;
        let mut absorb = |word: u64| {
            for shift in [0u32, 8, 16, 24, 32, 40, 48, 56] {
                let b = (word >> shift) & 0xff;
                lo = (lo ^ b).wrapping_mul(PRIME);
                hi = (hi ^ b).wrapping_mul(PRIME);
            }
        };
        absorb(self.nrows as u64);
        absorb(self.ncols as u64);
        absorb(self.nnz() as u64);
        for &p in &self.rowptr {
            absorb(p as u64);
        }
        for &c in &self.colidx {
            absorb(c as u64);
        }
        for &v in &self.values {
            absorb(v.to_bits());
        }
        ((hi as u128) << 64) | lo as u128
    }

    /// Apply a batch of structural edge mutations in place.
    ///
    /// Semantics per op are documented on [`EdgeOp`]; within one batch
    /// the **last** op on each `(row, col)` cell wins (so
    /// `[Add e, Remove e]` in a single batch is a plain remove, and
    /// duplicate ops collapse). The rebuild is a streaming merge:
    /// untouched rows are copied verbatim, touched rows are merged with
    /// their (column-sorted) ops, so the whole batch costs
    /// `O(nnz + ops log ops)`.
    ///
    /// On success the matrix records a [`LineageHop`] — the pre-delta
    /// content hash plus the touched endpoints — and invalidates the
    /// hash memo. A batch that changes nothing (all no-ops) records no
    /// hop and keeps the memo. Out-of-bounds indices fail the whole
    /// batch before anything is modified.
    pub fn apply_delta(&mut self, ops: &[EdgeOp]) -> Result<DeltaReport, SparseError> {
        // Dedupe to last-op-wins per cell; BTreeMap iteration then
        // yields ops grouped by row with columns ascending, exactly the
        // order the merge below consumes.
        let mut per_cell: BTreeMap<(usize, usize), EdgeOp> = BTreeMap::new();
        for op in ops {
            let (row, col) = op.cell();
            if row >= self.nrows || col >= self.ncols {
                return Err(SparseError::IndexOutOfBounds {
                    row,
                    col,
                    nrows: self.nrows,
                    ncols: self.ncols,
                });
            }
            per_cell.insert((row, col), *op);
        }
        let mut report = DeltaReport::default();
        if per_cell.is_empty() {
            return Ok(report);
        }
        let parent = self.content_hash();

        let mut touched: Vec<u32> = Vec::new();
        let mut rowptr = Vec::with_capacity(self.nrows + 1);
        rowptr.push(0usize);
        let mut colidx: Vec<ColIdx> = Vec::with_capacity(self.nnz() + per_cell.len());
        let mut values: Vec<f64> = Vec::with_capacity(self.nnz() + per_cell.len());
        let mut cell_iter = per_cell.iter().peekable();
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            let mut k = 0usize;
            while let Some(&(&(row, col), op)) = cell_iter.peek() {
                if row != i {
                    break;
                }
                cell_iter.next();
                // Flush existing entries strictly left of the op column.
                while k < cols.len() && (cols[k] as usize) < col {
                    colidx.push(cols[k]);
                    values.push(vals[k]);
                    k += 1;
                }
                let present = k < cols.len() && cols[k] as usize == col;
                match (op, present) {
                    (EdgeOp::Add { .. }, true) | (EdgeOp::Remove { .. }, false) => {
                        report.noops += 1;
                        if present {
                            colidx.push(cols[k]);
                            values.push(vals[k]);
                            k += 1;
                        }
                    }
                    (EdgeOp::Add { value, .. }, false) => {
                        colidx.push(col as ColIdx);
                        values.push(*value);
                        report.added += 1;
                        touched.push(row as u32);
                        touched.push(col as u32);
                    }
                    (EdgeOp::Remove { .. }, true) => {
                        k += 1; // skip the stored entry
                        report.removed += 1;
                        touched.push(row as u32);
                        touched.push(col as u32);
                    }
                }
            }
            colidx.extend_from_slice(&cols[k..]);
            values.extend_from_slice(&vals[k..]);
            rowptr.push(colidx.len());
        }

        if !report.changed() {
            return Ok(report);
        }
        touched.sort_unstable();
        touched.dedup();
        report.touched_rows = touched.clone();
        self.rowptr = rowptr;
        self.colidx = colidx;
        self.values = values;
        self.hash_memo.take();
        self.lineage.push(LineageHop { parent, touched });
        if self.lineage.len() > LINEAGE_CAP {
            self.lineage.remove(0);
        }
        Ok(report)
    }

    /// The content hash of the matrix this one was most recently
    /// derived from via [`CsrMatrix::apply_delta`], if any.
    pub fn parent_hash(&self) -> Option<u128> {
        self.lineage.last().map(|hop| hop.parent)
    }

    /// The recorded mutation ancestry, oldest hop first (bounded by
    /// [`LINEAGE_CAP`]). `lineage().last()` is the immediate parent.
    pub fn lineage(&self) -> &[LineageHop] {
        &self.lineage
    }

    /// The oldest recorded ancestor's hash — a stable identity across a
    /// (bounded) chain of deltas, used for lineage-affine routing.
    pub fn lineage_root(&self) -> Option<u128> {
        self.lineage.first().map(|hop| hop.parent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix {
        // [ 1 0 2 ]
        // [ 0 3 0 ]
        // [ 4 0 5 ]
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 1.0);
        coo.push(0, 2, 2.0);
        coo.push(1, 1, 3.0);
        coo.push(2, 0, 4.0);
        coo.push(2, 2, 5.0);
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn from_coo_sorts_and_sums_duplicates() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(1, 1, 1.0);
        coo.push(0, 1, 2.0);
        coo.push(0, 0, 3.0);
        coo.push(0, 1, 4.0); // duplicate, summed
        let a = CsrMatrix::from_coo(&coo);
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.get(0, 1), Some(6.0));
        assert_eq!(a.get(0, 0), Some(3.0));
        assert_eq!(a.get(1, 1), Some(1.0));
        a.validate().unwrap();
    }

    #[test]
    fn row_access() {
        let a = small();
        let (cols, vals) = a.row(2);
        assert_eq!(cols, &[0, 2]);
        assert_eq!(vals, &[4.0, 5.0]);
        assert_eq!(a.row_nnz(1), 1);
    }

    #[test]
    fn spmv_dense_reference() {
        let a = small();
        let y = a.spmv_dense(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![7.0, 6.0, 19.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = small();
        let t = a.transpose();
        t.validate().unwrap();
        assert_eq!(t.get(0, 2), Some(4.0));
        assert_eq!(t.get(2, 0), Some(2.0));
        let tt = t.transpose();
        assert_eq!(tt, a);
    }

    #[test]
    fn identity_matrix() {
        let i = CsrMatrix::identity(4);
        i.validate().unwrap();
        assert_eq!(i.nnz(), 4);
        let y = i.spmv_dense(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(y, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn permute_symmetric_reverse() {
        let a = small();
        let p = Permutation::from_new_to_old(vec![2, 1, 0]).unwrap();
        let b = a.permute_symmetric(&p).unwrap();
        b.validate().unwrap();
        // Old (2,2)=5 moves to (0,0); old (0,2)=2 moves to (2,0).
        assert_eq!(b.get(0, 0), Some(5.0));
        assert_eq!(b.get(2, 0), Some(2.0));
        assert_eq!(b.get(1, 1), Some(3.0));
        assert_eq!(b.nnz(), a.nnz());
    }

    #[test]
    fn permute_symmetric_identity_is_noop() {
        let a = small();
        let p = Permutation::identity(3);
        assert_eq!(a.permute_symmetric(&p).unwrap(), a);
    }

    #[test]
    fn permute_rows_only() {
        let a = small();
        let p = Permutation::from_new_to_old(vec![1, 2, 0]).unwrap();
        let b = a.permute_rows(&p);
        b.validate().unwrap();
        // New row 0 is old row 1.
        assert_eq!(b.get(0, 1), Some(3.0));
        assert_eq!(b.get(1, 0), Some(4.0));
        assert_eq!(b.get(2, 2), Some(2.0));
    }

    #[test]
    fn permute_cols_only() {
        let a = small();
        let p = Permutation::from_new_to_old(vec![2, 1, 0]).unwrap();
        let b = a.permute_cols(&p);
        b.validate().unwrap();
        // Old column 0 moves to column 2.
        assert_eq!(b.get(0, 2), Some(1.0));
        assert_eq!(b.get(0, 0), Some(2.0));
    }

    #[test]
    fn from_parts_rejects_bad_structure() {
        // Non-monotone rowptr.
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 2, 1], vec![0], vec![1.0]).is_err());
        // Unsorted columns.
        assert!(CsrMatrix::from_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).is_err());
        // Duplicate columns.
        assert!(CsrMatrix::from_parts(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).is_err());
        // Column out of range.
        assert!(CsrMatrix::from_parts(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
        // Length mismatch.
        assert!(CsrMatrix::from_parts(1, 2, vec![0, 1], vec![0], vec![]).is_err());
    }

    #[test]
    fn diagonal_and_get() {
        let a = small();
        assert_eq!(a.diagonal(), vec![1.0, 3.0, 5.0]);
        assert_eq!(a.get(0, 1), None);
    }

    #[test]
    fn csr_bytes_accounting() {
        let a = small();
        assert_eq!(a.csr_bytes(), 5 * 8 + 5 * 4 + 4 * 8);
    }

    #[test]
    fn content_hash_is_stable_across_insertion_order() {
        // The same logical matrix built from COO triplets pushed in
        // three different orders must hash identically: CSR is the
        // canonical form, so the hash is insertion-order independent.
        let triplets = [
            (0usize, 0usize, 1.0),
            (0, 2, 2.0),
            (1, 1, 3.0),
            (2, 0, 4.0),
            (2, 2, 5.0),
        ];
        let build = |order: &[usize]| {
            let mut coo = CooMatrix::new(3, 3);
            for &k in order {
                let (i, j, v) = triplets[k];
                coo.push(i, j, v);
            }
            CsrMatrix::from_coo(&coo).content_hash()
        };
        let h1 = build(&[0, 1, 2, 3, 4]);
        let h2 = build(&[4, 3, 2, 1, 0]);
        let h3 = build(&[2, 0, 4, 1, 3]);
        assert_eq!(h1, h2);
        assert_eq!(h1, h3);
    }

    #[test]
    fn content_hash_distinguishes_content() {
        let a = small();
        // Different value, same pattern.
        let mut b = a.clone();
        b.values_mut()[0] += 1.0;
        assert_ne!(a.content_hash(), b.content_hash());
        // Different pattern, same nnz.
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 1, 1.0);
        coo.push(0, 2, 2.0);
        coo.push(1, 1, 3.0);
        coo.push(2, 0, 4.0);
        coo.push(2, 2, 5.0);
        let c = CsrMatrix::from_coo(&coo);
        assert_ne!(a.content_hash(), c.content_hash());
        // Same nonzeros, different dimensions.
        let mut coo4 = CooMatrix::new(4, 4);
        for (i, j, v) in a.iter() {
            coo4.push(i, j, v);
        }
        let d = CsrMatrix::from_coo(&coo4);
        assert_ne!(a.content_hash(), d.content_hash());
        // Identical content hashes identically (fresh clone).
        assert_eq!(a.content_hash(), a.clone().content_hash());
    }

    #[test]
    fn content_hash_memo_never_goes_stale() {
        // Regression: the hash is memoised, so every in-place mutation
        // path must invalidate the memo or a stale hash would be served.
        let mut a = small();
        let h0 = a.content_hash();
        assert_eq!(a.content_hash(), h0, "memoised re-read must agree");

        // values_mut invalidates even if the caller writes nothing...
        let _ = a.values_mut();
        assert_eq!(a.content_hash(), h0, "same content, same hash");
        // ...and a real write rehashes to something new.
        a.values_mut()[0] += 1.0;
        let h1 = a.content_hash();
        assert_ne!(h0, h1);

        // apply_delta invalidates on structural change.
        let report = a
            .apply_delta(&[EdgeOp::Add {
                row: 1,
                col: 2,
                value: 9.0,
            }])
            .unwrap();
        assert!(report.changed());
        let h2 = a.content_hash();
        assert_ne!(h1, h2);

        // A pure no-op batch keeps both content and hash.
        let report = a
            .apply_delta(&[
                EdgeOp::Add {
                    row: 1,
                    col: 2,
                    value: 123.0,
                },
                EdgeOp::Remove { row: 0, col: 1 },
            ])
            .unwrap();
        assert_eq!(report.noops, 2);
        assert!(!report.changed());
        assert_eq!(a.content_hash(), h2);
    }

    #[test]
    fn apply_delta_add_and_remove() {
        let mut a = small();
        let before = a.clone();
        let report = a
            .apply_delta(&[
                EdgeOp::Add {
                    row: 0,
                    col: 1,
                    value: 7.0,
                },
                EdgeOp::Remove { row: 2, col: 0 },
                EdgeOp::Add {
                    row: 1,
                    col: 1,
                    value: -1.0,
                }, // exists: structural no-op, value kept
            ])
            .unwrap();
        a.validate().unwrap();
        assert_eq!((report.added, report.removed, report.noops), (1, 1, 1));
        // Both endpoints of each effective op are reported.
        assert_eq!(report.touched_rows, vec![0, 1, 2]);
        assert_eq!(a.get(0, 1), Some(7.0));
        assert_eq!(a.get(2, 0), None);
        assert_eq!(a.get(1, 1), Some(3.0), "add on existing keeps value");
        assert_eq!(a.nnz(), before.nnz());
        // Lineage points at the pre-delta hash.
        assert_eq!(a.parent_hash(), Some(before.content_hash()));
        assert_eq!(a.lineage().len(), 1);
        assert_eq!(a.lineage()[0].touched, vec![0, 1, 2]);
    }

    #[test]
    fn apply_delta_last_op_wins_within_batch() {
        let mut a = small();
        let report = a
            .apply_delta(&[
                EdgeOp::Add {
                    row: 0,
                    col: 1,
                    value: 7.0,
                },
                EdgeOp::Remove { row: 0, col: 1 },
            ])
            .unwrap();
        // Collapses to a remove of an absent entry: a no-op.
        assert!(!report.changed());
        assert_eq!(report.noops, 1);
        assert_eq!(a, small());
    }

    #[test]
    fn apply_delta_rejects_out_of_bounds() {
        let mut a = small();
        let before = a.clone();
        let err = a
            .apply_delta(&[
                EdgeOp::Add {
                    row: 0,
                    col: 1,
                    value: 7.0,
                },
                EdgeOp::Remove { row: 5, col: 0 },
            ])
            .unwrap_err();
        assert!(matches!(err, SparseError::IndexOutOfBounds { row: 5, .. }));
        // The whole batch fails before anything is modified.
        assert_eq!(a, before);
        assert!(a.lineage().is_empty());
    }

    #[test]
    fn lineage_chain_is_bounded() {
        let mut a = small();
        let root = a.content_hash();
        let mut hashes = vec![root];
        for k in 0..LINEAGE_CAP + 3 {
            let on = k % 2 == 0;
            let op = if on {
                EdgeOp::Add {
                    row: 1,
                    col: 0,
                    value: k as f64 + 1.0,
                }
            } else {
                EdgeOp::Remove { row: 1, col: 0 }
            };
            assert!(a.apply_delta(&[op]).unwrap().changed());
            hashes.push(a.content_hash());
        }
        assert_eq!(a.lineage().len(), LINEAGE_CAP);
        // Newest hop is the immediate parent; the root has rolled off.
        let n = hashes.len();
        assert_eq!(a.parent_hash(), Some(hashes[n - 2]));
        assert_eq!(a.lineage_root(), Some(hashes[n - 1 - LINEAGE_CAP]));
        // Clones carry the lineage; fresh builds have none.
        assert_eq!(a.clone().lineage(), a.lineage());
        assert!(small().parent_hash().is_none());
    }

    #[test]
    fn iter_yields_row_major() {
        let a = small();
        let all: Vec<_> = a.iter().collect();
        assert_eq!(
            all,
            vec![
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0)
            ]
        );
    }
}
