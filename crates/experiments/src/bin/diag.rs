//! Diagnostic: per-matrix 1D speedups per ordering on one machine
//! (not part of the paper's artefacts; used to tune corpus balance).

use experiments::cli::parse_args;
use experiments::fmt::render_table;
use experiments::sweep::{sweep_corpus, SweepConfig, ORDERINGS};

fn main() {
    let opts = parse_args();
    let machines = vec![archsim::machine_by_name("Milan B").unwrap()];
    let specs = corpus::standard_corpus(opts.size);
    let cfg = SweepConfig::for_size(opts.size);
    let sweeps = sweep_corpus(&specs, &machines, &cfg, false);
    let mut header = vec!["matrix".to_string(), "nnz".to_string()];
    header.extend(ORDERINGS[1..].iter().map(|s| s.to_string()));
    let mut rows = Vec::new();
    for s in &sweeps {
        let mut row = vec![s.name.clone(), s.nnz.to_string()];
        for o in 1..ORDERINGS.len() {
            row.push(format!("{:.2}", s.speedup_1d(o, 0)));
        }
        rows.push(row);
    }
    println!("{}", render_table(&header, &rows));
}
