//! Regenerates Table 5: wall-clock time to reorder the ten largest
//! corpus matrices, next to the (simulated) time of one SpMV iteration
//! on Ice Lake with 72 threads.
//!
//! Unlike the SpMV numbers elsewhere (which come from the machine
//! model), the reordering times here are real, measured on the host:
//! the reordering implementations are the actual algorithms, so their
//! relative cost — Gray fastest, RCM second, ND/HP slowest — is
//! directly observable.

use archsim::{machine_by_name, simulate_spmv_1d};
use experiments::cli::parse_args;
use experiments::fmt::{fmt_seconds, render_table};
use experiments::sweep::SweepConfig;
use reorder::all_algorithms;

fn main() {
    let opts = parse_args();
    let cfg = SweepConfig::for_size(opts.size);
    let icelake = machine_by_name("Ice Lake").unwrap();
    let specs = corpus::overhead_matrices(opts.size);

    let header: Vec<String> = [
        "Matrix Name",
        "RCM",
        "AMD",
        "ND",
        "GP",
        "HP",
        "Gray",
        "SpMV",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for spec in &specs {
        let a = spec.build();
        eprintln!("reordering {} ({} nnz) ...", spec.name, a.nnz());
        let mut row = vec![spec.name.clone()];
        for alg in all_algorithms(cfg.gp_parts, cfg.hp_parts) {
            let t = alg.compute_timed(&a).expect("overhead matrices are square");
            row.push(fmt_seconds(t.elapsed.as_secs_f64()));
        }
        let spmv = simulate_spmv_1d(&a, &icelake).seconds;
        row.push(fmt_seconds(spmv));
        rows.push(row);
    }

    println!("Table 5: time (s) to reorder a matrix, measured on this host.");
    println!("For comparison, the (simulated) time of one CSR SpMV iteration on Ice Lake");
    println!("with 72 threads is also shown.\n");
    println!("{}", render_table(&header, &rows));
    println!("Amortisation example (paper §4.7): if reordering takes R seconds, one SpMV");
    println!("takes s seconds, and reordering speeds SpMV up by factor f, then");
    println!("R / (s * (1 - 1/f)) SpMV iterations are needed to break even.");
}
