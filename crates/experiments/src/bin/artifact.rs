//! Emit measurement files in the layout of the paper's artifact dataset
//! (Zenodo 10.5281/zenodo.7821491): one plain-text table per machine
//! and kernel, 490→N rows (one per matrix), with five matrix-identity
//! columns, the thread count, and seven columns per ordering in the
//! artifact's ordering sequence (Original, RCM, ND, AMD, GP, HP, Gray):
//!
//! 1. minimum nonzeros processed by any thread
//! 2. maximum nonzeros processed by any thread
//! 3. mean nonzeros per thread
//! 4. imbalance factor (max / mean)
//! 5. time (s) for one SpMV iteration (minimum over repetitions)
//! 6. maximum performance (Gflop/s)
//! 7. mean performance (Gflop/s)
//!
//! The cost model is deterministic, so the "minimum over repetitions"
//! equals every repetition and columns 6 and 7 coincide; the real
//! artifact's max/mean differ only by measurement noise.
//!
//! Files land in `results/artifact/`.

use archsim::{simulate_spmv_1d_opt, simulate_spmv_2d_opt, SimOptions, SimResult};
use experiments::cli::parse_args;
use experiments::sweep::{apply_all_orderings, SweepConfig};
use std::io::Write;

/// Artifact column order for the orderings (differs from the paper's
/// table order: ND precedes AMD here).
const ARTIFACT_ORDER: [&str; 7] = ["Original", "RCM", "ND", "AMD", "GP", "HP", "Gray"];

fn push_stats(line: &mut String, r: &SimResult) {
    let nnz_min = r.thread_nnz.iter().copied().min().unwrap_or(0);
    let nnz_max = r.thread_nnz.iter().copied().max().unwrap_or(0);
    let mean = r.thread_nnz.iter().sum::<usize>() as f64 / r.thread_nnz.len().max(1) as f64;
    line.push_str(&format!(
        " {} {} {:.1} {:.4} {:.6e} {:.4} {:.4}",
        nnz_min, nnz_max, mean, r.imbalance, r.seconds, r.gflops, r.gflops
    ));
}

fn main() {
    let opts = parse_args();
    let cfg = SweepConfig::for_size(opts.size);
    let specs = corpus::standard_corpus(opts.size);
    let machines = opts.machines();
    std::fs::create_dir_all("results/artifact").expect("create results/artifact");

    // Reorder once per matrix; simulate per machine/kernel.
    eprintln!("reordering {} matrices ...", specs.len());
    let per_matrix: Vec<_> = specs
        .iter()
        .map(|spec| {
            let a = std::sync::Arc::new(spec.build());
            let ordered = apply_all_orderings(&a, &cfg);
            eprintln!("  {} done", spec.name);
            (spec, a.nrows(), a.ncols(), a.nnz(), ordered)
        })
        .collect();
    experiments::sweep::log_engine_stats("artifact");

    for m in &machines {
        let slug = m.name.to_lowercase().replace(' ', "");
        for kernel in ["1d", "2d"] {
            let path = format!(
                "results/artifact/csr_{kernel}_{slug}_{:03}_threads_synth{}.txt",
                m.threads,
                specs.len()
            );
            let mut out = std::io::BufWriter::new(
                std::fs::File::create(&path).expect("create artifact file"),
            );
            writeln!(
                out,
                "# group name rows cols nnz threads then per ordering ({:?}):",
                ARTIFACT_ORDER
            )
            .unwrap();
            writeln!(
                out,
                "# nnz_min nnz_max nnz_mean imbalance time_s max_gflops mean_gflops"
            )
            .unwrap();
            for (spec, rows, cols, nnz, ordered) in &per_matrix {
                let mut line = format!(
                    "{} {} {} {} {} {}",
                    spec.group, spec.name, rows, cols, nnz, m.threads
                );
                for want in ARTIFACT_ORDER {
                    let (_, _, b) = ordered
                        .iter()
                        .find(|(name, _, _)| name == want)
                        .expect("ordering present");
                    let sim_opts = SimOptions {
                        cache_scale: cfg.cache_scale,
                    };
                    let r = if kernel == "1d" {
                        simulate_spmv_1d_opt(b, m, &sim_opts)
                    } else {
                        simulate_spmv_2d_opt(b, m, &sim_opts)
                    };
                    push_stats(&mut line, &r);
                }
                writeln!(out, "{line}").unwrap();
            }
            eprintln!("wrote {path}");
        }
    }
    println!(
        "artifact files for {} machines x 2 kernels written to results/artifact/",
        machines.len()
    );
}
