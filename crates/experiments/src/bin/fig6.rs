//! Regenerates Fig. 6: ratio of nonzeros in the Cholesky factor L to
//! nonzeros in A, for the symmetric orderings on the SPD corpus subset.
//! Gray is excluded (it is unsymmetric and cannot precondition a
//! Cholesky factorisation, §4.6).

use cholesky::fill_ratio;
use experiments::cli::parse_args;
use experiments::fmt::render_boxplot;
use experiments::sweep::SweepConfig;
use reorder::{all_algorithms, ReorderAlgorithm};
use spfeatures::quartiles;

fn main() {
    let opts = parse_args();
    let cfg = SweepConfig::for_size(opts.size);
    let specs = corpus::spd_corpus(opts.size);
    eprintln!("computing fill for {} SPD matrices ...", specs.len());

    let mut names: Vec<String> = vec!["Original".to_string()];
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new()];
    let algs: Vec<Box<dyn ReorderAlgorithm + Send + Sync>> =
        all_algorithms(cfg.gp_parts, cfg.hp_parts)
            .into_iter()
            .filter(|a| a.name() != "Gray")
            .collect();
    for a in &algs {
        names.push(a.name().to_string());
        ratios.push(Vec::new());
    }

    for spec in &specs {
        let a = spec.build();
        ratios[0].push(fill_ratio(&a));
        for (k, alg) in algs.iter().enumerate() {
            let b = alg
                .compute(&a)
                .expect("SPD corpus is square")
                .apply(&a)
                .expect("apply");
            ratios[k + 1].push(fill_ratio(&b));
        }
        eprintln!("  {} done", spec.name);
    }

    println!(
        "Fig. 6: nonzero ratio nnz(L)/nnz(A) for Cholesky with different orderings ({} SPD matrices).\n",
        specs.len()
    );
    let entries: Vec<(String, spfeatures::BoxStats)> = names
        .iter()
        .zip(ratios.iter())
        .filter_map(|(n, r)| quartiles(r).map(|b| (n.clone(), b)))
        .collect();
    let hi = entries.iter().map(|(_, b)| b.max).fold(2.0f64, f64::max) * 1.1;
    print!("{}", render_boxplot(&entries, 0.9, hi, 57));
    println!();
    println!("(lower is better; AMD and ND are expected to produce the least fill)");
}
