//! Regenerates Fig. 5: Dolan–Moré performance profiles comparing the
//! orderings on bandwidth, profile, off-diagonal nonzero count and SpMV
//! runtime (Milan B, as in the paper).

use archsim::machine_by_name;
use experiments::cli::parse_args;
use experiments::sweep::{sweep_corpus, SweepConfig, ORDERINGS};
use spfeatures::{performance_profile, ProfileCurve};

fn print_profiles(title: &str, curves: &[ProfileCurve]) {
    println!("-- {title} --");
    println!(
        "{:<10} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "method", "t=1.0", "t=1.1", "t=1.5", "t=2.0", "t=5.0"
    );
    for c in curves {
        println!(
            "{:<10} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2}",
            c.name,
            c.at(1.0),
            c.at(1.1),
            c.at(1.5),
            c.at(2.0),
            c.at(5.0)
        );
    }
    println!();
}

fn main() {
    let opts = parse_args();
    let machines = vec![machine_by_name("Milan B").unwrap()];
    let specs = corpus::standard_corpus(opts.size);
    let cfg = SweepConfig::for_size(opts.size);
    eprintln!("sweeping {} matrices ...", specs.len());
    let sweeps = sweep_corpus(&specs, &machines, &cfg, true);

    let taus: Vec<f64> = {
        let mut t = vec![1.0];
        while *t.last().unwrap() < 32.0 {
            t.push(t.last().unwrap() * 1.05);
        }
        t
    };
    let names: Vec<&str> = ORDERINGS.to_vec();

    println!(
        "Fig. 5: performance profiles (fraction of matrices within factor t of the best method).\n"
    );

    // Bandwidth.
    let cost: Vec<Vec<f64>> = sweeps
        .iter()
        .map(|s| {
            s.runs
                .iter()
                .map(|r| r.features.bandwidth.max(1) as f64)
                .collect()
        })
        .collect();
    print_profiles("bandwidth", &performance_profile(&names, &cost, &taus));

    // Profile.
    let cost: Vec<Vec<f64>> = sweeps
        .iter()
        .map(|s| {
            s.runs
                .iter()
                .map(|r| r.features.profile.max(1) as f64)
                .collect()
        })
        .collect();
    print_profiles("profile", &performance_profile(&names, &cost, &taus));

    // Off-diagonal nonzero count.
    let cost: Vec<Vec<f64>> = sweeps
        .iter()
        .map(|s| {
            s.runs
                .iter()
                .map(|r| r.features.off_diagonal_nnz.max(1) as f64)
                .collect()
        })
        .collect();
    print_profiles(
        "off-diagonal nnz",
        &performance_profile(&names, &cost, &taus),
    );

    // SpMV runtime (1D, Milan B).
    let cost: Vec<Vec<f64>> = sweeps
        .iter()
        .map(|s| s.runs.iter().map(|r| r.per_machine[0].seconds_1d).collect())
        .collect();
    print_profiles(
        "SpMV runtime (Milan B, 1D)",
        &performance_profile(&names, &cost, &taus),
    );
}
