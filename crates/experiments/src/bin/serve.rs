//! `serve`: replay a synthetic reordering request trace against the
//! engine and report serving metrics.
//!
//! The paper's amortisation argument (§4.7, Table 5) says reordering
//! pays for itself when its cost is spread over many SpMV iterations.
//! A serving deployment sharpens that: *requests for orderings repeat*
//! (the same matrices come back, hot matrices far more often than cold
//! ones), so a content-addressed cache amortises the cost across
//! requests as well as iterations. This binary quantifies that with a
//! Zipf-distributed trace over the (matrix, algorithm) key space:
//!
//! - **throughput** — requests served per second of wall-clock;
//! - **hit rate** — fraction of requests amortised (cache hits, disk
//!   hits, or coalesced onto an in-flight computation);
//! - **latency** — p50/p99 of the per-request wait, microseconds.
//!
//! Usage:
//!
//! ```text
//! serve [--size small|medium|large] [--requests N] [--clients N]
//!       [--workers N] [--skew S] [--seed N] [--cache-capacity N]
//!       [--persist-dir DIR]
//! ```

use corpus::CorpusSize;
use engine::{AlgoSpec, Engine, EngineConfig, MatrixHandle};
use experiments::sweep::SweepConfig;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use std::time::Instant;

struct ServeOptions {
    size: CorpusSize,
    requests: usize,
    clients: usize,
    workers: usize,
    skew: f64,
    seed: u64,
    cache_capacity: usize,
    persist_dir: Option<std::path::PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            size: CorpusSize::Small,
            requests: 2000,
            clients: 4,
            workers: EngineConfig::default().workers,
            skew: 1.1,
            seed: 42,
            cache_capacity: 4096,
            persist_dir: None,
        }
    }
}

fn usage() -> ! {
    println!(
        "usage: serve [--size small|medium|large] [--requests N] [--clients N]\n\
         \x20            [--workers N] [--skew S] [--seed N] [--cache-capacity N]\n\
         \x20            [--persist-dir DIR]"
    );
    std::process::exit(0);
}

fn parse_serve_args() -> ServeOptions {
    let mut opts = ServeOptions::default();
    let mut it = std::env::args().skip(1);
    fn value(it: &mut impl Iterator<Item = String>, flag: &str) -> String {
        it.next().unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
    }
    fn num<T: std::str::FromStr>(v: String, flag: &str) -> T {
        v.parse().unwrap_or_else(|_| {
            eprintln!("{flag}: cannot parse '{v}'");
            std::process::exit(2);
        })
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--size" => {
                opts.size = match value(&mut it, "--size").as_str() {
                    "small" => CorpusSize::Small,
                    "medium" => CorpusSize::Medium,
                    "large" => CorpusSize::Large,
                    other => {
                        eprintln!("unknown --size '{other}' (small|medium|large)");
                        std::process::exit(2);
                    }
                };
            }
            "--requests" => opts.requests = num(value(&mut it, "--requests"), "--requests"),
            "--clients" => opts.clients = num::<usize>(value(&mut it, "--clients"), "--clients").max(1),
            "--workers" => opts.workers = num::<usize>(value(&mut it, "--workers"), "--workers").max(1),
            "--skew" => opts.skew = num(value(&mut it, "--skew"), "--skew"),
            "--seed" => opts.seed = num(value(&mut it, "--seed"), "--seed"),
            "--cache-capacity" => {
                opts.cache_capacity =
                    num::<usize>(value(&mut it, "--cache-capacity"), "--cache-capacity").max(1)
            }
            "--persist-dir" => opts.persist_dir = Some(value(&mut it, "--persist-dir").into()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// Draw `n` indices in `0..weights_cumulative.len()` from the
/// distribution whose cumulative weights are given (ascending, last
/// element = total mass).
fn sample_trace(cumulative: &[f64], n: usize, rng: &mut ChaCha8Rng) -> Vec<usize> {
    let total = *cumulative.last().expect("non-empty key space");
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen::<f64>() * total;
            // First index whose cumulative weight exceeds u.
            cumulative.partition_point(|&c| c <= u).min(cumulative.len() - 1)
        })
        .collect()
}

fn percentile(sorted_micros: &[u64], pct: f64) -> u64 {
    if sorted_micros.is_empty() {
        return 0;
    }
    let idx = ((pct / 100.0) * (sorted_micros.len() - 1) as f64).round() as usize;
    sorted_micros[idx.min(sorted_micros.len() - 1)]
}

fn main() {
    let opts = parse_serve_args();
    let cfg = SweepConfig::for_size(opts.size);

    // --- Key space: every (matrix, algorithm) pair of the study. -----
    let setup = Instant::now();
    let specs = corpus::standard_corpus(opts.size);
    let handles: Vec<MatrixHandle> = specs
        .iter()
        .map(|s| MatrixHandle::from_matrix(s.build()))
        .collect();
    let mut algos = vec![AlgoSpec::Original];
    algos.extend(AlgoSpec::study_suite(cfg.gp_parts, cfg.hp_parts));
    let keys: Vec<(usize, AlgoSpec)> = handles
        .iter()
        .enumerate()
        .flat_map(|(mi, _)| algos.iter().map(move |&a| (mi, a)))
        .collect();
    eprintln!(
        "key space: {} matrices x {} algorithms = {} keys ({:.2}s to build corpus)",
        handles.len(),
        algos.len(),
        keys.len(),
        setup.elapsed().as_secs_f64()
    );

    // --- Zipf trace: rank r gets weight 1/r^s; ranks are assigned to
    // keys in shuffled order so popularity is uncorrelated with the
    // corpus enumeration. -------------------------------------------
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
    let mut order: Vec<usize> = (0..keys.len()).collect();
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut cumulative = Vec::with_capacity(keys.len());
    let mut acc = 0.0;
    for rank in 1..=keys.len() {
        acc += 1.0 / (rank as f64).powf(opts.skew);
        cumulative.push(acc);
    }
    let trace: Vec<usize> = sample_trace(&cumulative, opts.requests, &mut rng)
        .into_iter()
        .map(|rank| order[rank])
        .collect();
    let unique = {
        let mut seen = vec![false; keys.len()];
        trace.iter().for_each(|&k| seen[k] = true);
        seen.iter().filter(|&&s| s).count()
    };
    eprintln!(
        "trace: {} requests over {} unique keys (zipf s = {})",
        trace.len(),
        unique,
        opts.skew
    );

    // --- Replay through the engine. ----------------------------------
    let engine = Arc::new(Engine::new(EngineConfig {
        workers: opts.workers,
        cache_capacity: opts.cache_capacity,
        persist_dir: opts.persist_dir.clone(),
        ..EngineConfig::default()
    }));
    let replay = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let chunk = trace.len().div_ceil(opts.clients);
        let threads: Vec<_> = trace
            .chunks(chunk.max(1))
            .map(|slice| {
                let engine = Arc::clone(&engine);
                let handles = &handles;
                let keys = &keys;
                scope.spawn(move || {
                    slice
                        .iter()
                        .map(|&k| {
                            let (mi, algo) = keys[k];
                            let t0 = Instant::now();
                            engine
                                .get(&handles[mi], algo)
                                .unwrap_or_else(|e| panic!("{} failed: {e}", algo.name()));
                            t0.elapsed().as_micros() as u64
                        })
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        threads
            .into_iter()
            .flat_map(|t| t.join().expect("client thread panicked"))
            .collect()
    });
    let wall = replay.elapsed().as_secs_f64();
    latencies.sort_unstable();

    // --- Report. -----------------------------------------------------
    let stats = engine.stats();
    let amortised = stats.cache.hits + stats.cache.disk_hits + stats.coalesced;
    let hit_rate = amortised as f64 / stats.submitted.max(1) as f64;
    println!("served {} requests in {:.3}s with {} clients / {} workers", trace.len(), wall, opts.clients, opts.workers);
    println!("  throughput: {:.0} req/s", trace.len() as f64 / wall);
    println!(
        "  hit rate:   {:.1}% ({} memory + {} disk + {} coalesced of {} requests)",
        100.0 * hit_rate,
        stats.cache.hits,
        stats.cache.disk_hits,
        stats.coalesced,
        stats.submitted
    );
    println!(
        "  latency:    p50 {} us | p99 {} us | max {} us",
        percentile(&latencies, 50.0),
        percentile(&latencies, 99.0),
        latencies.last().copied().unwrap_or(0)
    );
    println!(
        "  compute:    {} jobs, {:.3}s of reordering amortised over {} requests",
        stats.jobs_executed, stats.compute_seconds, stats.submitted
    );
    println!("  engine:     {stats}");
    if hit_rate < 0.5 {
        eprintln!(
            "warning: hit rate below 50% — trace too short or cache too small \
             for this key space"
        );
        std::process::exit(1);
    }
}
