//! `serve`: replay a synthetic reordering request trace against the
//! engine and report serving metrics.
//!
//! The paper's amortisation argument (§4.7, Table 5) says reordering
//! pays for itself when its cost is spread over many SpMV iterations.
//! A serving deployment sharpens that: *requests for orderings repeat*
//! (the same matrices come back, hot matrices far more often than cold
//! ones), so a content-addressed cache amortises the cost across
//! requests as well as iterations. This binary quantifies that with a
//! Zipf-distributed trace over the (matrix, algorithm) key space:
//!
//! - **throughput** — requests served per second of wall-clock;
//! - **hit rate** — fraction of requests amortised (cache hits, disk
//!   hits, or coalesced onto an in-flight computation);
//! - **latency** — p50/p99 of the per-request wait, read from the
//!   telemetry registry's `serve.request` histogram.
//!
//! All accounting flows through the process-wide [`telemetry`]
//! registry — the same series the engine, the reordering algorithms
//! and the SpMV measurement loop feed — and the run ends by emitting
//! the full registry as a JSON snapshot and as Prometheus exposition
//! text (stdout, or files under `--export-dir`).
//!
//! With `--trace-dir` a flight recorder is attached to the engine and
//! a sampled subset of requests (`--trace-sample-rate`) records a
//! request-scoped trace across the whole serving path: cache lookup,
//! queue wait, reorder compute, plan build, and a downstream SpMV
//! measurement whose `ThreadTeam` contributes one timeline lane per
//! worker. Each dumped request yields `trace-<id>.json` (Chrome
//! trace-event format: load in Perfetto / `chrome://tracing`) and
//! `trace-<id>.txt` (the plain-text stage breakdown). The SpMV stage
//! also attaches the [`archsim`] cost model's verdict on the served
//! ordering — modelled Gflop/s, DRAM traffic and `x`-vector hit rate —
//! as span arguments, so a trace shows *why* the layout performs the
//! way it does next to how long each stage took.
//!
//! Usage:
//!
//! ```text
//! serve [--size small|medium|large] [--requests N] [--clients N]
//!       [--workers N] [--reorder-threads N] [--skew S] [--seed N]
//!       [--cache-capacity N] [--kernel 1d|2d|merge] [--persist-dir DIR]
//!       [--export-dir DIR] [--trace-dir DIR] [--trace-sample-rate R]
//! ```
//!
//! `--reorder-threads N` sizes the engine's shared reordering team:
//! the symmetrisation, level-set and permutation stages of each
//! ordering dispatch on that team (permutations are byte-identical at
//! every size), and sampled traces gain `reorder.symmetrize` /
//! `reorder.levels` / `reorder.permute` sub-stage spans.

use corpus::CorpusSize;
use engine::{AlgoSpec, CachedOrdering, Engine, EngineConfig, MatrixHandle};
use experiments::sweep::SweepConfig;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use spmv::{host_threads, measure_spmv_in, measure_spmv_traced, KernelKind, MeasureConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use telemetry::{FlightRecorder, TraceCtx};

/// At most this many sampled requests run the downstream SpMV stage
/// and write trace files — tracing is a magnifier, not a census.
const TRACE_DUMP_CAP: usize = 16;

/// Flight-recorder ring capacity (events per thread).
const TRACE_RING_CAPACITY: usize = 1 << 14;

struct ServeOptions {
    size: CorpusSize,
    requests: usize,
    clients: usize,
    workers: usize,
    reorder_threads: usize,
    skew: f64,
    seed: u64,
    cache_capacity: usize,
    kernel: KernelKind,
    persist_dir: Option<std::path::PathBuf>,
    export_dir: Option<std::path::PathBuf>,
    trace_dir: Option<std::path::PathBuf>,
    trace_sample_rate: f64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            size: CorpusSize::Small,
            requests: 2000,
            clients: 4,
            workers: EngineConfig::default().workers,
            reorder_threads: EngineConfig::default().reorder_threads,
            skew: 1.1,
            seed: 42,
            cache_capacity: 4096,
            kernel: KernelKind::OneD,
            persist_dir: None,
            export_dir: None,
            trace_dir: None,
            trace_sample_rate: 1.0,
        }
    }
}

impl ServeOptions {
    /// The engine's sampling stride: trace every N-th request. A rate
    /// of 1.0 traces everything, 0.01 every hundredth request, 0 (or a
    /// missing `--trace-dir`) nothing.
    fn trace_stride(&self) -> u64 {
        if self.trace_dir.is_none() || self.trace_sample_rate <= 0.0 {
            0
        } else if self.trace_sample_rate >= 1.0 {
            1
        } else {
            (1.0 / self.trace_sample_rate).round() as u64
        }
    }
}

fn usage() -> ! {
    println!(
        "usage: serve [--size small|medium|large] [--requests N] [--clients N]\n\
         \x20            [--workers N] [--reorder-threads N] [--skew S] [--seed N]\n\
         \x20            [--cache-capacity N] [--kernel 1d|2d|merge] [--persist-dir DIR]\n\
         \x20            [--export-dir DIR] [--trace-dir DIR] [--trace-sample-rate R]"
    );
    std::process::exit(0);
}

fn parse_serve_args() -> ServeOptions {
    let mut opts = ServeOptions::default();
    let mut it = std::env::args().skip(1);
    fn value(it: &mut impl Iterator<Item = String>, flag: &str) -> String {
        it.next().unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
    }
    fn num<T: std::str::FromStr>(v: String, flag: &str) -> T {
        v.parse().unwrap_or_else(|_| {
            eprintln!("{flag}: cannot parse '{v}'");
            std::process::exit(2);
        })
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--size" => {
                opts.size = match value(&mut it, "--size").as_str() {
                    "small" => CorpusSize::Small,
                    "medium" => CorpusSize::Medium,
                    "large" => CorpusSize::Large,
                    other => {
                        eprintln!("unknown --size '{other}' (small|medium|large)");
                        std::process::exit(2);
                    }
                };
            }
            "--requests" => opts.requests = num(value(&mut it, "--requests"), "--requests"),
            "--clients" => {
                opts.clients = num::<usize>(value(&mut it, "--clients"), "--clients").max(1)
            }
            "--workers" => {
                opts.workers = num::<usize>(value(&mut it, "--workers"), "--workers").max(1)
            }
            "--reorder-threads" => {
                opts.reorder_threads =
                    num::<usize>(value(&mut it, "--reorder-threads"), "--reorder-threads").max(1)
            }
            "--skew" => opts.skew = num(value(&mut it, "--skew"), "--skew"),
            "--seed" => opts.seed = num(value(&mut it, "--seed"), "--seed"),
            "--cache-capacity" => {
                opts.cache_capacity =
                    num::<usize>(value(&mut it, "--cache-capacity"), "--cache-capacity").max(1)
            }
            "--kernel" => {
                let v = value(&mut it, "--kernel");
                opts.kernel = KernelKind::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown --kernel '{v}' (1d|2d|merge)");
                    std::process::exit(2);
                });
            }
            "--persist-dir" => opts.persist_dir = Some(value(&mut it, "--persist-dir").into()),
            "--export-dir" => opts.export_dir = Some(value(&mut it, "--export-dir").into()),
            "--trace-dir" => opts.trace_dir = Some(value(&mut it, "--trace-dir").into()),
            "--trace-sample-rate" => {
                opts.trace_sample_rate =
                    num::<f64>(value(&mut it, "--trace-sample-rate"), "--trace-sample-rate")
                        .clamp(0.0, 1.0)
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// Draw `n` indices in `0..weights_cumulative.len()` from the
/// distribution whose cumulative weights are given (ascending, last
/// element = total mass).
fn sample_trace(cumulative: &[f64], n: usize, rng: &mut ChaCha8Rng) -> Vec<usize> {
    let total = *cumulative.last().expect("non-empty key space");
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen::<f64>() * total;
            // First index whose cumulative weight exceeds u.
            cumulative
                .partition_point(|&c| c <= u)
                .min(cumulative.len() - 1)
        })
        .collect()
}

/// The downstream stage of one sampled request: apply the served
/// ordering, plan and measure SpMV under the request's trace, attach
/// the [`archsim`] cost model's verdict on the layout as span
/// arguments, and write the request's Chrome-trace JSON and text
/// summary into `dir`.
#[allow(clippy::too_many_arguments)]
fn trace_spmv_and_dump(
    engine: &Engine,
    registry: &Arc<telemetry::Registry>,
    handle: &MatrixHandle,
    ordering: &Arc<CachedOrdering>,
    kernel: KernelKind,
    request_id: u64,
    ctx: &TraceCtx,
    dir: &std::path::Path,
) {
    let mut span = ctx.span("serve.spmv");
    span.arg("kernel", kernel.name());
    // Apply the served ordering on the engine's reorder team, under
    // its own sub-stage span — the serving-side counterpart of the
    // worker-side `reorder.symmetrize`/`reorder.levels` stages.
    let reordered = {
        let mut permute = span.ctx().span("reorder.permute");
        permute.arg("nnz", handle.matrix().nnz());
        Arc::new(
            ordering
                .apply_on(handle.matrix(), team::Exec::Team(engine.reorder_team()))
                .expect("applying the served ordering"),
        )
    };
    span.arg("nnz", reordered.nnz());
    // The cost model's verdict on this layout. DRAM bytes beyond the
    // compulsory CSR stream are x-vector line fetches (at most
    // 8 bytes/nnz of useful demand), so their shortfall is the
    // fraction of x reads served on-chip.
    let sim = archsim::simulate_spmv_1d(&reordered, &archsim::machines()[0]);
    let streamed = archsim::BYTES_PER_NNZ * reordered.nnz() as f64
        + archsim::BYTES_PER_ROW * reordered.nrows() as f64;
    let x_hit =
        1.0 - ((sim.dram_bytes - streamed) / (8.0 * reordered.nnz() as f64)).clamp(0.0, 1.0);
    span.arg("model_gflops", sim.gflops);
    span.arg("model_dram_bytes", sim.dram_bytes as u64);
    span.arg("model_imbalance", sim.imbalance);
    span.arg("model_x_hit_rate", x_hit);

    // Plan through the engine's plan cache (records `engine.plan`),
    // then measure on the persistent team (records `spmv.measure` plus
    // one dispatch/compute/park timeline lane per worker).
    let nthreads = host_threads().clamp(2, 4);
    let reordered_handle = MatrixHandle::new(Arc::clone(&reordered));
    let _plan = engine.plan_traced(&reordered_handle, kernel, nthreads, &span.ctx());
    let mcfg = MeasureConfig {
        repetitions: 4,
        warmup: 1,
        nthreads,
    };
    let measured = measure_spmv_traced(registry, &span.ctx(), &reordered, kernel, &mcfg);
    span.arg("measured_gflops", measured.max_gflops);
    drop(span);

    if let Some(json) = engine.trace_chrome_json(request_id) {
        std::fs::write(dir.join(format!("trace-{request_id}.json")), json)
            .expect("writing trace JSON");
    }
    if let Some(text) = engine.trace_summary(request_id) {
        std::fs::write(dir.join(format!("trace-{request_id}.txt")), text)
            .expect("writing trace summary");
    }
}

fn main() {
    let opts = parse_serve_args();
    let cfg = SweepConfig::for_size(opts.size);

    // --- Key space: every (matrix, algorithm) pair of the study. -----
    let setup = Instant::now();
    let specs = corpus::standard_corpus(opts.size);
    let handles: Vec<MatrixHandle> = specs
        .iter()
        .map(|s| MatrixHandle::from_matrix(s.build()))
        .collect();
    let mut algos = vec![AlgoSpec::Original];
    algos.extend(AlgoSpec::study_suite(cfg.gp_parts, cfg.hp_parts));
    let keys: Vec<(usize, AlgoSpec)> = handles
        .iter()
        .enumerate()
        .flat_map(|(mi, _)| algos.iter().map(move |&a| (mi, a)))
        .collect();
    eprintln!(
        "key space: {} matrices x {} algorithms = {} keys ({:.2}s to build corpus)",
        handles.len(),
        algos.len(),
        keys.len(),
        setup.elapsed().as_secs_f64()
    );

    // --- Zipf trace: rank r gets weight 1/r^s; ranks are assigned to
    // keys in shuffled order so popularity is uncorrelated with the
    // corpus enumeration. -------------------------------------------
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
    let mut order: Vec<usize> = (0..keys.len()).collect();
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut cumulative = Vec::with_capacity(keys.len());
    let mut acc = 0.0;
    for rank in 1..=keys.len() {
        acc += 1.0 / (rank as f64).powf(opts.skew);
        cumulative.push(acc);
    }
    let trace: Vec<usize> = sample_trace(&cumulative, opts.requests, &mut rng)
        .into_iter()
        .map(|rank| order[rank])
        .collect();
    let unique = {
        let mut seen = vec![false; keys.len()];
        trace.iter().for_each(|&k| seen[k] = true);
        seen.iter().filter(|&&s| s).count()
    };
    eprintln!(
        "trace: {} requests over {} unique keys (zipf s = {})",
        trace.len(),
        unique,
        opts.skew
    );

    // --- Replay through the engine. ----------------------------------
    let recorder = opts
        .trace_dir
        .as_ref()
        .map(|_| FlightRecorder::new(TRACE_RING_CAPACITY));
    let engine = Arc::new(Engine::new(EngineConfig {
        workers: opts.workers,
        reorder_threads: opts.reorder_threads,
        cache_capacity: opts.cache_capacity,
        persist_dir: opts.persist_dir.clone(),
        recorder: recorder.clone(),
        trace_sample_every: opts.trace_stride(),
        ..EngineConfig::default()
    }));
    if let Some(dir) = &opts.trace_dir {
        std::fs::create_dir_all(dir).expect("creating --trace-dir");
        eprintln!(
            "tracing: every {} request(s), dumping up to {} to {}",
            opts.trace_stride().max(1),
            TRACE_DUMP_CAP,
            dir.display()
        );
    }
    let registry = Arc::clone(engine.registry());
    // Per-request wait lands in one registry histogram; the quantiles
    // below come from there, not from a binary-local sample vector.
    let request_hist = registry.histogram("serve.request");
    let traced_requests = AtomicUsize::new(0);
    let dump_slots = AtomicUsize::new(0);
    let replay = Instant::now();
    std::thread::scope(|scope| {
        let chunk = trace.len().div_ceil(opts.clients);
        for slice in trace.chunks(chunk.max(1)) {
            let engine = Arc::clone(&engine);
            let registry = Arc::clone(&registry);
            let request_hist = Arc::clone(&request_hist);
            let handles = &handles;
            let keys = &keys;
            let trace_dir = opts.trace_dir.as_deref();
            let kernel = opts.kernel;
            let traced_requests = &traced_requests;
            let dump_slots = &dump_slots;
            scope.spawn(move || {
                for &k in slice {
                    let (mi, algo) = keys[k];
                    let t0 = Instant::now();
                    let ticket = engine.submit(&handles[mi], algo);
                    let request_id = ticket.request_id();
                    let tctx = ticket.trace_ctx();
                    let ordering = ticket
                        .wait()
                        .unwrap_or_else(|e| panic!("{} failed: {e}", algo.name()));
                    request_hist.record_duration(t0.elapsed());
                    if tctx.is_recording() {
                        traced_requests.fetch_add(1, Ordering::Relaxed);
                        if let Some(dir) = trace_dir {
                            if dump_slots.fetch_add(1, Ordering::Relaxed) < TRACE_DUMP_CAP {
                                trace_spmv_and_dump(
                                    &engine,
                                    &registry,
                                    &handles[mi],
                                    &ordering,
                                    kernel,
                                    request_id,
                                    &tctx,
                                    dir,
                                );
                            }
                        }
                    }
                }
            });
        }
    });
    let wall = replay.elapsed().as_secs_f64();
    if opts.trace_dir.is_some() {
        eprintln!(
            "tracing: {} request(s) recorded, {} dumped",
            traced_requests.load(Ordering::Relaxed),
            dump_slots.load(Ordering::Relaxed).min(TRACE_DUMP_CAP)
        );
    }

    // --- SpMV on the hottest matrix: the downstream payoff. ----------
    // The quantity the cache amortises is reordering time *per SpMV
    // iteration*; measure the served RCM ordering against the original
    // layout on the most-requested matrix, feeding the registry's
    // `spmv.measure.rep` histogram through the shared measurement path.
    let mut hits_per_matrix = vec![0usize; handles.len()];
    trace.iter().for_each(|&k| hits_per_matrix[keys[k].0] += 1);
    let hot = hits_per_matrix
        .iter()
        .enumerate()
        .max_by_key(|&(_, c)| c)
        .map_or(0, |(i, _)| i);
    let ordering = engine
        .get(&handles[hot], AlgoSpec::Rcm)
        .expect("RCM on the hot matrix");
    let reordered = Arc::new(
        ordering
            .apply(handles[hot].matrix())
            .expect("applying the served ordering"),
    );
    let mcfg = MeasureConfig {
        repetitions: 30,
        ..MeasureConfig::default()
    };
    let base = measure_spmv_in(&registry, handles[hot].matrix(), opts.kernel, &mcfg);
    let rcm = measure_spmv_in(&registry, &reordered, opts.kernel, &mcfg);

    // --- Report, from the registry. ----------------------------------
    let stats = engine.stats();
    let snap = registry.snapshot();
    let lat = snap
        .histogram("serve.request")
        .expect("every request was recorded");
    let amortised = stats.cache.hits + stats.cache.disk_hits + stats.coalesced;
    let hit_rate = amortised as f64 / stats.submitted.max(1) as f64;
    println!(
        "served {} requests in {:.3}s with {} clients / {} workers",
        trace.len(),
        wall,
        opts.clients,
        opts.workers
    );
    println!("  throughput: {:.0} req/s", trace.len() as f64 / wall);
    println!(
        "  hit rate:   {:.1}% ({} memory + {} disk + {} coalesced of {} requests)",
        100.0 * hit_rate,
        stats.cache.hits,
        stats.cache.disk_hits,
        stats.coalesced,
        stats.submitted
    );
    println!(
        "  latency:    p50 {} us | p99 {} us | max {} us ({} samples)",
        lat.p50 / 1_000,
        lat.p99 / 1_000,
        lat.max / 1_000,
        lat.count
    );
    println!(
        "  compute:    {} jobs, {:.3}s of reordering amortised over {} requests",
        stats.jobs_executed, stats.compute_seconds, stats.submitted
    );
    println!(
        "  spmv:       hot matrix {} ({} kernel): {:.2} Gflop/s original -> {:.2} Gflop/s RCM ({:.2}x)",
        hot,
        opts.kernel,
        base.max_gflops,
        rcm.max_gflops,
        rcm.max_gflops / base.max_gflops.max(1e-12)
    );
    println!("  engine:     {stats}");

    // --- Export the registry: JSON + Prometheus. ---------------------
    match &opts.export_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir).expect("creating --export-dir");
            std::fs::write(dir.join("serve.json"), snap.to_json()).expect("writing serve.json");
            std::fs::write(dir.join("serve.prom"), snap.to_prometheus())
                .expect("writing serve.prom");
            eprintln!("wrote {}/serve.{{json,prom}}", dir.display());
        }
        None => {
            println!("--- telemetry snapshot (json) ---");
            println!("{}", snap.to_json());
            println!("--- telemetry snapshot (prometheus) ---");
            print!("{}", snap.to_prometheus());
        }
    }

    if hit_rate < 0.5 {
        eprintln!(
            "warning: hit rate below 50% — trace too short or cache too small \
             for this key space"
        );
        std::process::exit(1);
    }
}
