//! `serve`: replay a synthetic SpMV request trace against the sharded
//! serving tier and report serving metrics.
//!
//! The paper's amortisation argument (§4.7, Table 5) says reordering
//! pays for itself when its cost is spread over many SpMV iterations.
//! A serving deployment sharpens that: *requests repeat* (the same
//! matrices come back, hot matrices far more often than cold ones), so
//! the tier's content-addressed shard caches amortise the cost across
//! requests as well as iterations. This binary drives a
//! Zipf-distributed trace of full SpMV requests — each carries an input
//! vector and gets its answer back in original index space — through
//! [`servetier::ServeTier`] and reports:
//!
//! - **throughput** — answers delivered per second of wall-clock;
//! - **shedding** — requests rejected per reason (queue full, expired
//!   deadline) and per shard, the tier's overload behaviour;
//! - **hit rate** — fraction of engine submissions amortised across
//!   the shard caches (memory hits, disk hits, coalesced);
//! - **latency** — per-tenant p50/p99 of the end-to-end request time,
//!   read from the registry's `tier.request{tenant=...}` histograms.
//!
//! Every served answer is checked against a dense reference SpMV — the
//! tier's permute-in / multiply / inverse-permute-out pipeline must be
//! invisible to callers.
//!
//! With `--offered-load R` the clients submit **open-loop** at R
//! requests/s total (with `--deadline-ms` attaching a deadline to each
//! request), which is how the saturation knee is swept; without it they
//! run closed-loop (submit, wait, repeat), which keeps the trace-replay
//! behaviour of earlier revisions.
//!
//! With `--trace-dir` a flight recorder is attached to the tier and a
//! sampled subset of requests (`--trace-sample-rate`) records a
//! request-scoped trace across the whole serving path: admission wait,
//! shard execute, engine cache lookup / queue wait / reorder / plan,
//! the SpMV itself, and the inverse-permutation answer delivery. Each
//! dumped request also runs a downstream SpMV measurement (with the
//! [`archsim`] cost model's verdict attached as span arguments) and
//! yields `trace-<id>.json` (Chrome trace-event format) plus
//! `trace-<id>.txt` (the plain-text stage breakdown).
//!
//! Usage:
//!
//! With `--mutate-rate R` a mutator thread applies `R` structural edge
//! deltas per second (batches of `--mutate-edges` symmetric edits from
//! [`corpus::mutation_trace`]) to a rotating subset of the corpus while
//! the clients replay. Each delta clones the current matrix, applies
//! the batch (recording content-hash lineage), swaps the served handle
//! and its dense reference, and then submits a *freshness probe* — an
//! RCM request for the mutated matrix — timing how long the tier takes
//! to serve an answer under the new structure. That probe is where the
//! engine's delta path earns its keep: lineage-affine routing lands the
//! descendant on the parent's shard, and the cached per-component
//! ordering is spliced instead of recomputed (`engine.delta.*`
//! counters, `reorder.splice` trace stage).
//!
//! With `--policy {always,never,adaptive}` the tier's reordering
//! policy is selected: `always` honours every requested algorithm (the
//! historical behaviour), `never` serves everything in original order,
//! and `adaptive` lets the policy crate's cost model and amortization
//! ledger decide per request whether a reordering will pay for itself.
//!
//! ```text
//! serve [--size small|medium|large] [--requests N] [--clients N]
//!       [--shards N] [--tenants N] [--offered-load R] [--deadline-ms MS]
//!       [--queue-capacity N] [--workers N] [--reorder-threads N]
//!       [--skew S] [--seed N] [--cache-capacity N] [--kernel 1d|2d|merge]
//!       [--policy always|never|adaptive] [--persist-dir DIR]
//!       [--export-dir DIR] [--trace-dir DIR] [--trace-sample-rate R]
//!       [--mutate-rate R] [--mutate-edges N]
//! ```

use corpus::CorpusSize;
use engine::{AlgoSpec, EngineConfig, MatrixHandle};
use experiments::sweep::SweepConfig;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use servetier::{
    PolicyConfig, PolicyMode, ServeTier, ShedReason, SpmvRequest, TenantSpec, TierConfig, TierError,
};
use spmv::{host_threads, measure_spmv_in, measure_spmv_traced, KernelKind, MeasureConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use telemetry::{FlightRecorder, TraceCtx};

/// At most this many sampled requests run the downstream SpMV
/// measurement and write trace files — tracing is a magnifier, not a
/// census.
const TRACE_DUMP_CAP: usize = 16;

/// Flight-recorder ring capacity (events per thread).
const TRACE_RING_CAPACITY: usize = 1 << 14;

/// How many served answers each client verifies against the dense
/// reference (every answer is cheap to check, but the point is made
/// with a prefix).
const VERIFY_PER_CLIENT: usize = 32;

struct ServeOptions {
    size: CorpusSize,
    requests: usize,
    clients: usize,
    shards: usize,
    tenants: usize,
    offered_load: f64,
    deadline_ms: u64,
    queue_capacity: usize,
    workers: usize,
    reorder_threads: usize,
    skew: f64,
    seed: u64,
    cache_capacity: usize,
    kernel: KernelKind,
    policy: PolicyMode,
    persist_dir: Option<std::path::PathBuf>,
    export_dir: Option<std::path::PathBuf>,
    trace_dir: Option<std::path::PathBuf>,
    trace_sample_rate: f64,
    mutate_rate: f64,
    mutate_edges: usize,
    listen: Option<String>,
    listen_linger_ms: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            size: CorpusSize::Small,
            requests: 2000,
            clients: 4,
            shards: 1,
            tenants: 2,
            offered_load: 0.0,
            deadline_ms: 0,
            queue_capacity: 256,
            workers: EngineConfig::default().workers,
            reorder_threads: EngineConfig::default().reorder_threads,
            skew: 1.1,
            seed: 42,
            cache_capacity: 4096,
            kernel: KernelKind::OneD,
            policy: PolicyMode::Always,
            persist_dir: None,
            export_dir: None,
            trace_dir: None,
            trace_sample_rate: 1.0,
            mutate_rate: 0.0,
            mutate_edges: 8,
            listen: None,
            listen_linger_ms: 0,
        }
    }
}

impl ServeOptions {
    /// The tier's sampling stride: trace every N-th request. A rate of
    /// 1.0 traces everything, 0.01 every hundredth request, 0 nothing.
    /// Tracing is on when anything consumes it: a `--trace-dir` to
    /// dump into, or a `--listen` ops server answering `/traces`.
    fn trace_stride(&self) -> u64 {
        if (self.trace_dir.is_none() && self.listen.is_none()) || self.trace_sample_rate <= 0.0 {
            0
        } else if self.trace_sample_rate >= 1.0 {
            1
        } else {
            (1.0 / self.trace_sample_rate).round() as u64
        }
    }
}

fn usage() -> ! {
    println!(
        "usage: serve [--size small|medium|large] [--requests N] [--clients N]\n\
         \x20            [--shards N] [--tenants N] [--offered-load R] [--deadline-ms MS]\n\
         \x20            [--queue-capacity N] [--workers N] [--reorder-threads N]\n\
         \x20            [--skew S] [--seed N] [--cache-capacity N] [--kernel 1d|2d|merge]\n\
         \x20            [--policy always|never|adaptive] [--persist-dir DIR]\n\
         \x20            [--export-dir DIR] [--trace-dir DIR] [--trace-sample-rate R]\n\
         \x20            [--mutate-rate R] [--mutate-edges N]\n\
         \x20            [--listen ADDR] [--listen-linger-ms MS]"
    );
    std::process::exit(0);
}

fn parse_serve_args() -> ServeOptions {
    let mut opts = ServeOptions::default();
    let mut it = std::env::args().skip(1);
    fn value(it: &mut impl Iterator<Item = String>, flag: &str) -> String {
        it.next().unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
    }
    fn num<T: std::str::FromStr>(v: String, flag: &str) -> T {
        v.parse().unwrap_or_else(|_| {
            eprintln!("{flag}: cannot parse '{v}'");
            std::process::exit(2);
        })
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--size" => {
                opts.size = match value(&mut it, "--size").as_str() {
                    "small" => CorpusSize::Small,
                    "medium" => CorpusSize::Medium,
                    "large" => CorpusSize::Large,
                    other => {
                        eprintln!("unknown --size '{other}' (small|medium|large)");
                        std::process::exit(2);
                    }
                };
            }
            "--requests" => opts.requests = num(value(&mut it, "--requests"), "--requests"),
            "--clients" => {
                opts.clients = num::<usize>(value(&mut it, "--clients"), "--clients").max(1)
            }
            "--shards" => opts.shards = num::<usize>(value(&mut it, "--shards"), "--shards").max(1),
            "--tenants" => {
                opts.tenants = num::<usize>(value(&mut it, "--tenants"), "--tenants").max(1)
            }
            "--offered-load" => {
                opts.offered_load =
                    num::<f64>(value(&mut it, "--offered-load"), "--offered-load").max(0.0)
            }
            "--deadline-ms" => {
                opts.deadline_ms = num(value(&mut it, "--deadline-ms"), "--deadline-ms")
            }
            "--queue-capacity" => {
                opts.queue_capacity =
                    num::<usize>(value(&mut it, "--queue-capacity"), "--queue-capacity").max(1)
            }
            "--workers" => {
                opts.workers = num::<usize>(value(&mut it, "--workers"), "--workers").max(1)
            }
            "--reorder-threads" => {
                opts.reorder_threads =
                    num::<usize>(value(&mut it, "--reorder-threads"), "--reorder-threads").max(1)
            }
            "--skew" => opts.skew = num(value(&mut it, "--skew"), "--skew"),
            "--seed" => opts.seed = num(value(&mut it, "--seed"), "--seed"),
            "--cache-capacity" => {
                opts.cache_capacity =
                    num::<usize>(value(&mut it, "--cache-capacity"), "--cache-capacity").max(1)
            }
            "--kernel" => {
                let v = value(&mut it, "--kernel");
                opts.kernel = KernelKind::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown --kernel '{v}' (1d|2d|merge)");
                    std::process::exit(2);
                });
            }
            "--policy" => {
                let v = value(&mut it, "--policy");
                opts.policy = v.parse().unwrap_or_else(|e: String| {
                    eprintln!("--policy: {e}");
                    std::process::exit(2);
                });
            }
            "--persist-dir" => opts.persist_dir = Some(value(&mut it, "--persist-dir").into()),
            "--export-dir" => opts.export_dir = Some(value(&mut it, "--export-dir").into()),
            "--trace-dir" => opts.trace_dir = Some(value(&mut it, "--trace-dir").into()),
            "--trace-sample-rate" => {
                opts.trace_sample_rate =
                    num::<f64>(value(&mut it, "--trace-sample-rate"), "--trace-sample-rate")
                        .clamp(0.0, 1.0)
            }
            "--mutate-rate" => {
                opts.mutate_rate = num::<f64>(value(&mut it, "--mutate-rate"), "--mutate-rate")
                    .clamp(0.0, 10_000.0)
            }
            "--mutate-edges" => {
                opts.mutate_edges =
                    num::<usize>(value(&mut it, "--mutate-edges"), "--mutate-edges").max(1)
            }
            "--listen" => opts.listen = Some(value(&mut it, "--listen")),
            "--listen-linger-ms" => {
                opts.listen_linger_ms =
                    num(value(&mut it, "--listen-linger-ms"), "--listen-linger-ms")
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// Draw `n` indices in `0..weights_cumulative.len()` from the
/// distribution whose cumulative weights are given (ascending, last
/// element = total mass).
fn sample_trace(cumulative: &[f64], n: usize, rng: &mut ChaCha8Rng) -> Vec<usize> {
    let total = *cumulative.last().expect("non-empty key space");
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen::<f64>() * total;
            // First index whose cumulative weight exceeds u.
            cumulative
                .partition_point(|&c| c <= u)
                .min(cumulative.len() - 1)
        })
        .collect()
}

/// The served state of one matrix: the current handle (a
/// delta-descendant of the original once the mutator has touched it)
/// and the dense reference answer matching that exact structure.
struct DynamicSlot {
    handle: MatrixHandle,
    reference: Arc<Vec<f64>>,
}

/// How many corpus matrices the mutator cycles over. Small on purpose:
/// revisiting the same matrices means every delta after the first lap
/// finds its parent's ordering cached, which is the path under test.
const MUTATE_POOL: usize = 4;

/// What one client thread saw.
#[derive(Debug, Default, Clone, Copy)]
struct ClientTally {
    served: usize,
    shed_queue_full: usize,
    shed_expired: usize,
    verified: usize,
}

/// The downstream stage of one sampled request: re-apply the served
/// ordering, plan and measure SpMV under the request's trace, attach
/// the [`archsim`] cost model's verdict on the layout as span
/// arguments, and write the request's Chrome-trace JSON and text
/// summary into `dir`.
fn trace_spmv_and_dump(
    tier: &ServeTier,
    handle: &MatrixHandle,
    algo: AlgoSpec,
    kernel: KernelKind,
    request_id: u64,
    ctx: &TraceCtx,
    dir: &std::path::Path,
) {
    let engine = tier.engine_for(handle);
    let mut span = ctx.span("serve.spmv");
    span.arg("kernel", kernel.name());
    // The ordering the tier just served this key with — a cache hit on
    // the owning shard's engine.
    let ordering = engine
        .get(handle, algo)
        .expect("re-fetching the served ordering");
    // Apply it on the engine's reorder team, under its own sub-stage
    // span — the serving-side counterpart of the worker-side
    // `reorder.symmetrize`/`reorder.levels` stages.
    let reordered = {
        let mut permute = span.ctx().span("reorder.permute");
        permute.arg("nnz", handle.matrix().nnz());
        Arc::new(
            ordering
                .apply_on(handle.matrix(), team::Exec::Team(engine.reorder_team()))
                .expect("applying the served ordering"),
        )
    };
    span.arg("nnz", reordered.nnz());
    // The cost model's verdict on this layout. DRAM bytes beyond the
    // compulsory CSR stream are x-vector line fetches (at most
    // 8 bytes/nnz of useful demand), so their shortfall is the
    // fraction of x reads served on-chip.
    let sim = archsim::simulate_spmv_1d(&reordered, &archsim::machines()[0]);
    let streamed = archsim::BYTES_PER_NNZ * reordered.nnz() as f64
        + archsim::BYTES_PER_ROW * reordered.nrows() as f64;
    let x_hit =
        1.0 - ((sim.dram_bytes - streamed) / (8.0 * reordered.nnz() as f64)).clamp(0.0, 1.0);
    span.arg("model_gflops", sim.gflops);
    span.arg("model_dram_bytes", sim.dram_bytes as u64);
    span.arg("model_imbalance", sim.imbalance);
    span.arg("model_x_hit_rate", x_hit);

    // Plan through the engine's plan cache (records `engine.plan`),
    // then measure on the persistent team (records `spmv.measure` plus
    // one dispatch/compute/park timeline lane per worker).
    let nthreads = host_threads().clamp(2, 4);
    let reordered_handle = MatrixHandle::new(Arc::clone(&reordered));
    let _plan = engine.plan_traced(&reordered_handle, kernel, nthreads, &span.ctx());
    let mcfg = MeasureConfig {
        repetitions: 4,
        warmup: 1,
        nthreads,
    };
    let measured = measure_spmv_traced(tier.registry(), &span.ctx(), &reordered, kernel, &mcfg);
    span.arg("measured_gflops", measured.max_gflops);
    drop(span);

    if let Some(json) = tier.trace_chrome_json(request_id) {
        std::fs::write(dir.join(format!("trace-{request_id}.json")), json)
            .expect("writing trace JSON");
    }
    if let Some(text) = tier.trace_summary(request_id) {
        std::fs::write(dir.join(format!("trace-{request_id}.txt")), text)
            .expect("writing trace summary");
    }
}

/// Check a served answer against the dense reference, with a relative
/// tolerance covering the column-permutation's summation reordering.
fn verify_answer(y: &[f64], want: &[f64], key: usize) {
    assert_eq!(y.len(), want.len(), "key {key}: answer length mismatch");
    for (i, (g, w)) in y.iter().zip(want).enumerate() {
        assert!(
            (g - w).abs() <= 1e-9 * (1.0 + w.abs()),
            "key {key} row {i}: served {g}, reference {w} — answer not in original index space?"
        );
    }
}

fn main() {
    let opts = parse_serve_args();
    let cfg = SweepConfig::for_size(opts.size);

    // --- Key space: every (matrix, algorithm) pair of the study. -----
    let setup = Instant::now();
    let specs = corpus::standard_corpus(opts.size);
    let handles: Vec<MatrixHandle> = specs
        .iter()
        .map(|s| MatrixHandle::from_matrix(s.build()))
        .collect();
    // One input vector per matrix (deterministic, non-constant) and its
    // dense reference answer, for end-to-end verification.
    let xs: Vec<Arc<Vec<f64>>> = handles
        .iter()
        .map(|h| {
            Arc::new(
                (0..h.matrix().ncols())
                    .map(|i| 1.0 + (i % 7) as f64 * 0.5)
                    .collect(),
            )
        })
        .collect();
    let references: Vec<Arc<Vec<f64>>> = handles
        .iter()
        .zip(&xs)
        .map(|(h, x)| Arc::new(h.matrix().spmv_dense(x)))
        .collect();
    // The served state of each matrix. Static by default; under
    // `--mutate-rate` the mutator thread swaps in delta-descendants
    // (handle + matching dense reference) while the clients replay, so
    // every request reads the slot for a consistent (matrix, answer)
    // pair.
    let slots: Vec<std::sync::RwLock<DynamicSlot>> = handles
        .iter()
        .zip(&references)
        .map(|(h, r)| {
            std::sync::RwLock::new(DynamicSlot {
                handle: h.clone(),
                reference: Arc::clone(r),
            })
        })
        .collect();
    let mut algos = vec![AlgoSpec::Original];
    algos.extend(AlgoSpec::study_suite(cfg.gp_parts, cfg.hp_parts));
    let keys: Vec<(usize, AlgoSpec)> = handles
        .iter()
        .enumerate()
        .flat_map(|(mi, _)| algos.iter().map(move |&a| (mi, a)))
        .collect();
    eprintln!(
        "key space: {} matrices x {} algorithms = {} keys ({:.2}s to build corpus)",
        handles.len(),
        algos.len(),
        keys.len(),
        setup.elapsed().as_secs_f64()
    );

    // --- Zipf trace: rank r gets weight 1/r^s; ranks are assigned to
    // keys in shuffled order so popularity is uncorrelated with the
    // corpus enumeration. -------------------------------------------
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
    let mut order: Vec<usize> = (0..keys.len()).collect();
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut cumulative = Vec::with_capacity(keys.len());
    let mut acc = 0.0;
    for rank in 1..=keys.len() {
        acc += 1.0 / (rank as f64).powf(opts.skew);
        cumulative.push(acc);
    }
    let trace: Vec<usize> = sample_trace(&cumulative, opts.requests, &mut rng)
        .into_iter()
        .map(|rank| order[rank])
        .collect();
    let unique = {
        let mut seen = vec![false; keys.len()];
        trace.iter().for_each(|&k| seen[k] = true);
        seen.iter().filter(|&&s| s).count()
    };
    eprintln!(
        "trace: {} requests over {} unique keys (zipf s = {})",
        trace.len(),
        unique,
        opts.skew
    );

    // --- The tier. ---------------------------------------------------
    // The recorder feeds --trace-dir dumps and the ops server's
    // /traces routes; either consumer brings it up.
    let recorder = (opts.trace_dir.is_some() || opts.listen.is_some())
        .then(|| FlightRecorder::new(TRACE_RING_CAPACITY));
    let tenants: Vec<TenantSpec> = (0..opts.tenants)
        .map(|i| TenantSpec::new(format!("t{i}"), i as u32 + 1))
        .collect();
    // Per-tenant SLOs: the configured deadline is the latency
    // objective (50 ms when serving without deadlines), 99% required.
    let slo_latency_ms = if opts.deadline_ms > 0 {
        opts.deadline_ms as f64
    } else {
        50.0
    };
    let slo_specs: Vec<obsv::SloSpec> = tenants
        .iter()
        .map(|t| obsv::SloSpec::new(&t.name, slo_latency_ms, 0.99))
        .collect();
    let tier = Arc::new(ServeTier::new(TierConfig {
        shards: opts.shards,
        tenants: tenants.clone(),
        queue_capacity: opts.queue_capacity,
        spmv_threads: host_threads().clamp(2, 4),
        engine: EngineConfig {
            workers: opts.workers,
            reorder_threads: opts.reorder_threads,
            cache_capacity: opts.cache_capacity,
            persist_dir: opts.persist_dir.clone(),
            ..EngineConfig::default()
        },
        recorder: recorder.clone(),
        trace_sample_every: opts.trace_stride(),
        policy: PolicyConfig {
            mode: opts.policy,
            ..PolicyConfig::default()
        },
        slo: slo_specs,
        // With an ops server attached, /readyz holds traffic until the
        // first answer proves the path end to end.
        min_warm_serves: u64::from(opts.listen.is_some()),
        ..TierConfig::default()
    }));
    // --- The ops plane (--listen): HTTP server + SLO ticker. ---------
    let _slo_ticker = opts
        .listen
        .as_ref()
        .and_then(|_| tier.slo())
        .map(|slo| slo.start(Duration::from_millis(200)));
    let _obsv_server = opts.listen.as_ref().map(|addr| {
        let mut config = obsv::ObsvConfig::new(addr.clone(), Arc::clone(tier.registry()));
        config.source = Some(Arc::clone(&tier) as Arc<dyn obsv::OpsSource>);
        config.slo = tier.slo().cloned();
        let server =
            obsv::ObsvServer::start(config).unwrap_or_else(|e| panic!("--listen {addr}: {e}"));
        eprintln!("ops server: http://{}/", server.local_addr());
        server
    });
    if let Some(dir) = &opts.trace_dir {
        std::fs::create_dir_all(dir).expect("creating --trace-dir");
        eprintln!(
            "tracing: every {} request(s), dumping up to {} to {}",
            opts.trace_stride().max(1),
            TRACE_DUMP_CAP,
            dir.display()
        );
    }
    eprintln!(
        "tier: {} shard(s), {} tenant(s), queue capacity {}, policy {}, {}",
        opts.shards,
        opts.tenants,
        opts.queue_capacity,
        opts.policy.as_str(),
        if opts.offered_load > 0.0 {
            format!("open-loop at {:.0} req/s", opts.offered_load)
        } else {
            "closed-loop".to_string()
        }
    );

    // --- Replay through the tier. ------------------------------------
    let deadline = (opts.deadline_ms > 0).then(|| Duration::from_millis(opts.deadline_ms));
    let dump_slots = AtomicUsize::new(0);
    let traced_requests = AtomicUsize::new(0);
    let stop_mutator = std::sync::atomic::AtomicBool::new(false);
    let mutations = AtomicUsize::new(0);
    // Which matrices the mutator cycles over: the first few square ones
    // (structural deltas need row and column spaces to coincide).
    let mutable: Vec<usize> = (0..handles.len())
        .filter(|&i| {
            let m = handles[i].matrix();
            m.nrows() == m.ncols() && m.nrows() > 1
        })
        .take(MUTATE_POOL)
        .collect();
    if opts.mutate_rate > 0.0 {
        eprintln!(
            "mutating: {:.1} deltas/s of {} edge(s) over {} matrix(es)",
            opts.mutate_rate,
            opts.mutate_edges,
            mutable.len()
        );
    }
    let replay = Instant::now();
    let mut tally = ClientTally::default();
    std::thread::scope(|scope| {
        if opts.mutate_rate > 0.0 && !mutable.is_empty() {
            let tier = Arc::clone(&tier);
            let slots = &slots;
            let xs = &xs;
            let stop = &stop_mutator;
            let mutations = &mutations;
            let mutable = &mutable;
            let kernel = opts.kernel;
            let edges = opts.mutate_edges;
            let seed = opts.seed;
            let tenant = tenants[0].name.clone();
            let interval = Duration::from_secs_f64(1.0 / opts.mutate_rate);
            let staleness = tier.registry().histogram("serve.mutate.staleness");
            let trace_dir = opts.trace_dir.clone();
            let mut probe_dumps = 0usize;
            scope.spawn(move || {
                let start = Instant::now();
                let mut step: u64 = 0;
                while !stop.load(Ordering::Relaxed) {
                    let target =
                        start + Duration::from_secs_f64(step as f64 * interval.as_secs_f64());
                    // Sleep in short slices so shutdown is prompt.
                    while let Some(wait) = target.checked_duration_since(Instant::now()) {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        std::thread::sleep(wait.min(Duration::from_millis(25)));
                    }
                    let mi = mutable[step as usize % mutable.len()];
                    step += 1;
                    let t0 = Instant::now();
                    let parent = slots[mi].read().expect("slot lock").handle.clone();
                    let batch = corpus::mutation_trace(
                        parent.matrix(),
                        1,
                        edges,
                        seed ^ step.wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    )
                    .pop()
                    .unwrap_or_default();
                    if batch.is_empty() {
                        continue;
                    }
                    let mut mutated = (**parent.matrix()).clone();
                    mutated
                        .apply_delta(&batch)
                        .expect("mutation batch applies to its own parent");
                    let child = MatrixHandle::from_matrix(mutated);
                    let reference = Arc::new(child.matrix().spmv_dense(&xs[mi]));
                    {
                        let mut slot = slots[mi].write().expect("slot lock");
                        slot.handle = child.clone();
                        slot.reference = Arc::clone(&reference);
                    }
                    // Freshness probe: how long from the delta landing
                    // until the tier serves an answer for the *new*
                    // structure. Lineage routing sends it to the
                    // parent's shard, where the engine can splice the
                    // cached per-component ordering.
                    let probe = SpmvRequest {
                        tenant: tenant.clone(),
                        matrix: child,
                        algo: AlgoSpec::Rcm,
                        kernel,
                        x: Arc::clone(&xs[mi]),
                        priority: 0,
                        deadline: None,
                    };
                    let ticket = tier.submit(probe);
                    let request_id = ticket.request_id();
                    let sampled = ticket.trace_ctx().is_recording();
                    match ticket.wait() {
                        Ok(response) => {
                            verify_answer(&response.y, &reference, mi);
                            staleness.record_duration(t0.elapsed());
                            mutations.fetch_add(1, Ordering::Relaxed);
                            // Dump a few probe traces: they are where
                            // the `reorder.splice` stage shows up.
                            if sampled && probe_dumps < TRACE_DUMP_CAP {
                                if let Some(dir) = &trace_dir {
                                    if let Some(json) = tier.trace_chrome_json(request_id) {
                                        std::fs::write(
                                            dir.join(format!("trace-{request_id}.json")),
                                            json,
                                        )
                                        .expect("writing probe trace JSON");
                                        probe_dumps += 1;
                                    }
                                }
                            }
                        }
                        // Overloaded: the delta still landed, only the
                        // probe was shed.
                        Err(TierError::Shed(_)) => {
                            mutations.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(other) => panic!("freshness probe for matrix {mi} failed: {other}"),
                    }
                }
            });
        }
        let chunk = trace.len().div_ceil(opts.clients);
        let mut clients = Vec::new();
        for (ci, slice) in trace.chunks(chunk.max(1)).enumerate() {
            let tier = Arc::clone(&tier);
            let slots = &slots;
            let xs = &xs;
            let keys = &keys;
            let tenants = &tenants;
            let trace_dir = opts.trace_dir.as_deref();
            let kernel = opts.kernel;
            let offered_load = opts.offered_load;
            let clients_n = opts.clients;
            let dump_slots = &dump_slots;
            let traced_requests = &traced_requests;
            clients.push(scope.spawn(move || {
                let mut tally = ClientTally::default();
                // Open-loop pacing: this client's share of the offered
                // rate, submissions scheduled on a fixed grid.
                let interval = (offered_load > 0.0)
                    .then(|| Duration::from_secs_f64(clients_n as f64 / offered_load));
                let start = Instant::now();
                let mut pending: Vec<(servetier::TierTicket, usize, Arc<Vec<f64>>)> = Vec::new();
                let resolve = |result: Result<servetier::SpmvResponse, TierError>,
                               key: usize,
                               reference: &[f64],
                               tally: &mut ClientTally| {
                    match result {
                        Ok(response) => {
                            tally.served += 1;
                            if tally.verified < VERIFY_PER_CLIENT {
                                verify_answer(&response.y, reference, key);
                                tally.verified += 1;
                            }
                        }
                        Err(TierError::Shed(ShedReason::QueueFull)) => tally.shed_queue_full += 1,
                        Err(TierError::Shed(ShedReason::Expired)) => tally.shed_expired += 1,
                        Err(other) => panic!("request for key {key} failed: {other}"),
                    }
                };
                for (j, &k) in slice.iter().enumerate() {
                    if let Some(iv) = interval {
                        let target = start + iv * j as u32;
                        if let Some(wait) = target.checked_duration_since(Instant::now()) {
                            std::thread::sleep(wait);
                        }
                    }
                    let (mi, algo) = keys[k];
                    // One consistent (matrix, reference) pair — the
                    // mutator may swap the slot right after this read,
                    // but the answer is checked against the structure
                    // that was actually submitted.
                    let (handle, reference) = {
                        let slot = slots[mi].read().expect("slot lock");
                        (slot.handle.clone(), Arc::clone(&slot.reference))
                    };
                    let request = SpmvRequest {
                        tenant: tenants[(ci + j) % tenants.len()].name.clone(),
                        matrix: handle.clone(),
                        algo,
                        kernel,
                        x: Arc::clone(&xs[mi]),
                        priority: 0,
                        deadline: deadline.map(|d| Instant::now() + d),
                    };
                    let ticket = tier.submit(request);
                    let request_id = ticket.request_id();
                    let tctx = ticket.trace_ctx();
                    let sampled = tctx.is_recording();
                    if sampled {
                        traced_requests.fetch_add(1, Ordering::Relaxed);
                    }
                    if interval.is_some() {
                        // Open loop: stash the ticket, keep submitting.
                        pending.push((ticket, k, reference));
                        continue;
                    }
                    // Closed loop: wait inline, dump sampled requests.
                    let result = ticket.wait();
                    let ok = result.is_ok();
                    resolve(result, k, &reference, &mut tally);
                    if sampled && ok {
                        if let Some(dir) = trace_dir {
                            if dump_slots.fetch_add(1, Ordering::Relaxed) < TRACE_DUMP_CAP {
                                trace_spmv_and_dump(
                                    &tier, &handle, algo, kernel, request_id, &tctx, dir,
                                );
                            }
                        }
                    }
                }
                for (ticket, k, reference) in pending {
                    resolve(ticket.wait(), k, &reference, &mut tally);
                }
                tally
            }));
        }
        for client in clients {
            let t = client.join().expect("client thread");
            tally.served += t.served;
            tally.shed_queue_full += t.shed_queue_full;
            tally.shed_expired += t.shed_expired;
            tally.verified += t.verified;
        }
        stop_mutator.store(true, Ordering::Relaxed);
    });
    let wall = replay.elapsed().as_secs_f64();
    if opts.trace_dir.is_some() {
        eprintln!(
            "tracing: {} request(s) recorded, {} dumped",
            traced_requests.load(Ordering::Relaxed),
            dump_slots.load(Ordering::Relaxed).min(TRACE_DUMP_CAP)
        );
    }

    // --- SpMV on the hottest matrix: the downstream payoff. ----------
    // The quantity the caches amortise is reordering time *per SpMV
    // iteration*; measure the served RCM ordering against the original
    // layout on the most-requested matrix, through the owning shard's
    // engine so the measurement shares its caches.
    let mut hits_per_matrix = vec![0usize; handles.len()];
    trace.iter().for_each(|&k| hits_per_matrix[keys[k].0] += 1);
    let hot = hits_per_matrix
        .iter()
        .enumerate()
        .max_by_key(|&(_, c)| c)
        .map_or(0, |(i, _)| i);
    let hot_engine = tier.engine_for(&handles[hot]);
    let ordering = hot_engine
        .get(&handles[hot], AlgoSpec::Rcm)
        .expect("RCM on the hot matrix");
    let reordered = Arc::new(
        ordering
            .apply(handles[hot].matrix())
            .expect("applying the served ordering"),
    );
    let registry = Arc::clone(tier.registry());
    let mcfg = MeasureConfig {
        repetitions: 30,
        ..MeasureConfig::default()
    };
    let base = measure_spmv_in(&registry, handles[hot].matrix(), opts.kernel, &mcfg);
    let rcm = measure_spmv_in(&registry, &reordered, opts.kernel, &mcfg);

    // --- Report, from the tier and the registry. ---------------------
    let stats = tier.stats();
    let snap = registry.snapshot();
    let submitted: u64 = stats.shards.iter().map(|s| s.engine.submitted).sum();
    let amortised: u64 = stats
        .shards
        .iter()
        .map(|s| s.engine.cache.hits + s.engine.cache.disk_hits + s.engine.coalesced)
        .sum();
    let hit_rate = amortised as f64 / submitted.max(1) as f64;
    println!(
        "served {} of {} requests in {:.3}s with {} clients over {} shard(s)",
        tally.served,
        trace.len(),
        wall,
        opts.clients,
        opts.shards
    );
    println!(
        "  throughput: {:.0} answers/s (offered {})",
        tally.served as f64 / wall,
        if opts.offered_load > 0.0 {
            format!("{:.0} req/s", opts.offered_load)
        } else {
            "closed-loop".to_string()
        }
    );
    println!(
        "  shed:       {} queue-full + {} expired of {} requests ({} answers verified)",
        tally.shed_queue_full,
        tally.shed_expired,
        trace.len(),
        tally.verified
    );
    println!(
        "  hit rate:   {:.1}% ({} amortised of {} engine submissions)",
        100.0 * hit_rate,
        amortised,
        submitted
    );
    for (i, shard) in stats.shards.iter().enumerate() {
        println!(
            "  shard {i}:    {} admitted | {} served | {} shed-full | {} shed-expired | depth {} | engine: {}",
            shard.admitted,
            shard.served,
            shard.shed_queue_full,
            shard.shed_expired,
            shard.queue_depth,
            shard.engine
        );
    }
    if opts.mutate_rate > 0.0 {
        let delta_hits: u64 = stats.shards.iter().map(|s| s.engine.delta_hits).sum();
        let delta_splices: u64 = stats.shards.iter().map(|s| s.engine.delta_splices).sum();
        let (p50, p99, probes) = snap
            .histogram("serve.mutate.staleness")
            .map_or((0, 0, 0), |h| (h.p50 / 1_000, h.p99 / 1_000, h.count));
        println!(
            "  mutate:     {} deltas | {} lineage hits -> {} splices | freshness p50 {} us p99 {} us ({} probes)",
            mutations.load(Ordering::Relaxed),
            delta_hits,
            delta_splices,
            p50,
            p99,
            probes
        );
    }
    println!(
        "  policy:     {} ({} reorder / {} identity decisions, {} probes, net saved {:.1} ms)",
        opts.policy.as_str(),
        snap.counter_labeled("policy.decisions", &[("choice", "reorder")])
            .unwrap_or(0),
        snap.counter_labeled("policy.decisions", &[("choice", "identity")])
            .unwrap_or(0),
        snap.counter("policy.probes").unwrap_or(0),
        tier.policy().net_saved_seconds() * 1e3
    );
    for tenant in &tenants {
        if let Some(h) = snap.histogram_labeled("tier.request", &[("tenant", &tenant.name)]) {
            println!(
                "  tenant {} (w{}): p50 {} us | p99 {} us | max {} us ({} answers)",
                tenant.name,
                tenant.weight,
                h.p50 / 1_000,
                h.p99 / 1_000,
                h.max / 1_000,
                h.count
            );
        }
    }
    println!(
        "  spmv:       hot matrix {} ({} kernel): {:.2} Gflop/s original -> {:.2} Gflop/s RCM ({:.2}x)",
        hot,
        opts.kernel,
        base.max_gflops,
        rcm.max_gflops,
        rcm.max_gflops / base.max_gflops.max(1e-12)
    );

    // --- Export the registry: JSON + Prometheus. ---------------------
    match &opts.export_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir).expect("creating --export-dir");
            std::fs::write(dir.join("serve.json"), snap.to_json()).expect("writing serve.json");
            std::fs::write(dir.join("serve.prom"), snap.to_prometheus())
                .expect("writing serve.prom");
            eprintln!("wrote {}/serve.{{json,prom}}", dir.display());
        }
        None => {
            println!("--- telemetry snapshot (json) ---");
            println!("{}", snap.to_json());
            println!("--- telemetry snapshot (prometheus) ---");
            print!("{}", snap.to_prometheus());
        }
    }

    // Keep the ops server scrapeable after the replay finishes —
    // smoke tests curl the endpoints without racing the run.
    if opts.listen.is_some() && opts.listen_linger_ms > 0 {
        eprintln!("ops server: lingering {} ms", opts.listen_linger_ms);
        std::thread::sleep(Duration::from_millis(opts.listen_linger_ms));
    }

    if hit_rate < 0.5 {
        eprintln!(
            "warning: hit rate below 50% — trace too short or cache too small \
             for this key space"
        );
        std::process::exit(1);
    }
}
