//! `serve`: replay a synthetic reordering request trace against the
//! engine and report serving metrics.
//!
//! The paper's amortisation argument (§4.7, Table 5) says reordering
//! pays for itself when its cost is spread over many SpMV iterations.
//! A serving deployment sharpens that: *requests for orderings repeat*
//! (the same matrices come back, hot matrices far more often than cold
//! ones), so a content-addressed cache amortises the cost across
//! requests as well as iterations. This binary quantifies that with a
//! Zipf-distributed trace over the (matrix, algorithm) key space:
//!
//! - **throughput** — requests served per second of wall-clock;
//! - **hit rate** — fraction of requests amortised (cache hits, disk
//!   hits, or coalesced onto an in-flight computation);
//! - **latency** — p50/p99 of the per-request wait, read from the
//!   telemetry registry's `serve.request` histogram.
//!
//! All accounting flows through the process-wide [`telemetry`]
//! registry — the same series the engine, the reordering algorithms
//! and the SpMV measurement loop feed — and the run ends by emitting
//! the full registry as a JSON snapshot and as Prometheus exposition
//! text (stdout, or files under `--export-dir`).
//!
//! Usage:
//!
//! ```text
//! serve [--size small|medium|large] [--requests N] [--clients N]
//!       [--workers N] [--skew S] [--seed N] [--cache-capacity N]
//!       [--kernel 1d|2d|merge] [--persist-dir DIR] [--export-dir DIR]
//! ```

use corpus::CorpusSize;
use engine::{AlgoSpec, Engine, EngineConfig, MatrixHandle};
use experiments::sweep::SweepConfig;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use spmv::{measure_spmv_in, KernelKind, MeasureConfig};
use std::sync::Arc;
use std::time::Instant;

struct ServeOptions {
    size: CorpusSize,
    requests: usize,
    clients: usize,
    workers: usize,
    skew: f64,
    seed: u64,
    cache_capacity: usize,
    kernel: KernelKind,
    persist_dir: Option<std::path::PathBuf>,
    export_dir: Option<std::path::PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            size: CorpusSize::Small,
            requests: 2000,
            clients: 4,
            workers: EngineConfig::default().workers,
            skew: 1.1,
            seed: 42,
            cache_capacity: 4096,
            kernel: KernelKind::OneD,
            persist_dir: None,
            export_dir: None,
        }
    }
}

fn usage() -> ! {
    println!(
        "usage: serve [--size small|medium|large] [--requests N] [--clients N]\n\
         \x20            [--workers N] [--skew S] [--seed N] [--cache-capacity N]\n\
         \x20            [--kernel 1d|2d|merge] [--persist-dir DIR] [--export-dir DIR]"
    );
    std::process::exit(0);
}

fn parse_serve_args() -> ServeOptions {
    let mut opts = ServeOptions::default();
    let mut it = std::env::args().skip(1);
    fn value(it: &mut impl Iterator<Item = String>, flag: &str) -> String {
        it.next().unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
    }
    fn num<T: std::str::FromStr>(v: String, flag: &str) -> T {
        v.parse().unwrap_or_else(|_| {
            eprintln!("{flag}: cannot parse '{v}'");
            std::process::exit(2);
        })
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--size" => {
                opts.size = match value(&mut it, "--size").as_str() {
                    "small" => CorpusSize::Small,
                    "medium" => CorpusSize::Medium,
                    "large" => CorpusSize::Large,
                    other => {
                        eprintln!("unknown --size '{other}' (small|medium|large)");
                        std::process::exit(2);
                    }
                };
            }
            "--requests" => opts.requests = num(value(&mut it, "--requests"), "--requests"),
            "--clients" => {
                opts.clients = num::<usize>(value(&mut it, "--clients"), "--clients").max(1)
            }
            "--workers" => {
                opts.workers = num::<usize>(value(&mut it, "--workers"), "--workers").max(1)
            }
            "--skew" => opts.skew = num(value(&mut it, "--skew"), "--skew"),
            "--seed" => opts.seed = num(value(&mut it, "--seed"), "--seed"),
            "--cache-capacity" => {
                opts.cache_capacity =
                    num::<usize>(value(&mut it, "--cache-capacity"), "--cache-capacity").max(1)
            }
            "--kernel" => {
                let v = value(&mut it, "--kernel");
                opts.kernel = KernelKind::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown --kernel '{v}' (1d|2d|merge)");
                    std::process::exit(2);
                });
            }
            "--persist-dir" => opts.persist_dir = Some(value(&mut it, "--persist-dir").into()),
            "--export-dir" => opts.export_dir = Some(value(&mut it, "--export-dir").into()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// Draw `n` indices in `0..weights_cumulative.len()` from the
/// distribution whose cumulative weights are given (ascending, last
/// element = total mass).
fn sample_trace(cumulative: &[f64], n: usize, rng: &mut ChaCha8Rng) -> Vec<usize> {
    let total = *cumulative.last().expect("non-empty key space");
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen::<f64>() * total;
            // First index whose cumulative weight exceeds u.
            cumulative
                .partition_point(|&c| c <= u)
                .min(cumulative.len() - 1)
        })
        .collect()
}

fn main() {
    let opts = parse_serve_args();
    let cfg = SweepConfig::for_size(opts.size);

    // --- Key space: every (matrix, algorithm) pair of the study. -----
    let setup = Instant::now();
    let specs = corpus::standard_corpus(opts.size);
    let handles: Vec<MatrixHandle> = specs
        .iter()
        .map(|s| MatrixHandle::from_matrix(s.build()))
        .collect();
    let mut algos = vec![AlgoSpec::Original];
    algos.extend(AlgoSpec::study_suite(cfg.gp_parts, cfg.hp_parts));
    let keys: Vec<(usize, AlgoSpec)> = handles
        .iter()
        .enumerate()
        .flat_map(|(mi, _)| algos.iter().map(move |&a| (mi, a)))
        .collect();
    eprintln!(
        "key space: {} matrices x {} algorithms = {} keys ({:.2}s to build corpus)",
        handles.len(),
        algos.len(),
        keys.len(),
        setup.elapsed().as_secs_f64()
    );

    // --- Zipf trace: rank r gets weight 1/r^s; ranks are assigned to
    // keys in shuffled order so popularity is uncorrelated with the
    // corpus enumeration. -------------------------------------------
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
    let mut order: Vec<usize> = (0..keys.len()).collect();
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut cumulative = Vec::with_capacity(keys.len());
    let mut acc = 0.0;
    for rank in 1..=keys.len() {
        acc += 1.0 / (rank as f64).powf(opts.skew);
        cumulative.push(acc);
    }
    let trace: Vec<usize> = sample_trace(&cumulative, opts.requests, &mut rng)
        .into_iter()
        .map(|rank| order[rank])
        .collect();
    let unique = {
        let mut seen = vec![false; keys.len()];
        trace.iter().for_each(|&k| seen[k] = true);
        seen.iter().filter(|&&s| s).count()
    };
    eprintln!(
        "trace: {} requests over {} unique keys (zipf s = {})",
        trace.len(),
        unique,
        opts.skew
    );

    // --- Replay through the engine. ----------------------------------
    let engine = Arc::new(Engine::new(EngineConfig {
        workers: opts.workers,
        cache_capacity: opts.cache_capacity,
        persist_dir: opts.persist_dir.clone(),
        ..EngineConfig::default()
    }));
    let registry = Arc::clone(engine.registry());
    // Per-request wait lands in one registry histogram; the quantiles
    // below come from there, not from a binary-local sample vector.
    let request_hist = registry.histogram("serve.request");
    let replay = Instant::now();
    std::thread::scope(|scope| {
        let chunk = trace.len().div_ceil(opts.clients);
        for slice in trace.chunks(chunk.max(1)) {
            let engine = Arc::clone(&engine);
            let request_hist = Arc::clone(&request_hist);
            let handles = &handles;
            let keys = &keys;
            scope.spawn(move || {
                for &k in slice {
                    let (mi, algo) = keys[k];
                    let t0 = Instant::now();
                    engine
                        .get(&handles[mi], algo)
                        .unwrap_or_else(|e| panic!("{} failed: {e}", algo.name()));
                    request_hist.record_duration(t0.elapsed());
                }
            });
        }
    });
    let wall = replay.elapsed().as_secs_f64();

    // --- SpMV on the hottest matrix: the downstream payoff. ----------
    // The quantity the cache amortises is reordering time *per SpMV
    // iteration*; measure the served RCM ordering against the original
    // layout on the most-requested matrix, feeding the registry's
    // `spmv.measure.rep` histogram through the shared measurement path.
    let mut hits_per_matrix = vec![0usize; handles.len()];
    trace.iter().for_each(|&k| hits_per_matrix[keys[k].0] += 1);
    let hot = hits_per_matrix
        .iter()
        .enumerate()
        .max_by_key(|&(_, c)| c)
        .map_or(0, |(i, _)| i);
    let ordering = engine
        .get(&handles[hot], AlgoSpec::Rcm)
        .expect("RCM on the hot matrix");
    let reordered = Arc::new(
        ordering
            .apply(handles[hot].matrix())
            .expect("applying the served ordering"),
    );
    let mcfg = MeasureConfig {
        repetitions: 30,
        ..MeasureConfig::default()
    };
    let base = measure_spmv_in(&registry, handles[hot].matrix(), opts.kernel, &mcfg);
    let rcm = measure_spmv_in(&registry, &reordered, opts.kernel, &mcfg);

    // --- Report, from the registry. ----------------------------------
    let stats = engine.stats();
    let snap = registry.snapshot();
    let lat = snap
        .histogram("serve.request")
        .expect("every request was recorded");
    let amortised = stats.cache.hits + stats.cache.disk_hits + stats.coalesced;
    let hit_rate = amortised as f64 / stats.submitted.max(1) as f64;
    println!(
        "served {} requests in {:.3}s with {} clients / {} workers",
        trace.len(),
        wall,
        opts.clients,
        opts.workers
    );
    println!("  throughput: {:.0} req/s", trace.len() as f64 / wall);
    println!(
        "  hit rate:   {:.1}% ({} memory + {} disk + {} coalesced of {} requests)",
        100.0 * hit_rate,
        stats.cache.hits,
        stats.cache.disk_hits,
        stats.coalesced,
        stats.submitted
    );
    println!(
        "  latency:    p50 {} us | p99 {} us | max {} us ({} samples)",
        lat.p50 / 1_000,
        lat.p99 / 1_000,
        lat.max / 1_000,
        lat.count
    );
    println!(
        "  compute:    {} jobs, {:.3}s of reordering amortised over {} requests",
        stats.jobs_executed, stats.compute_seconds, stats.submitted
    );
    println!(
        "  spmv:       hot matrix {} ({} kernel): {:.2} Gflop/s original -> {:.2} Gflop/s RCM ({:.2}x)",
        hot,
        opts.kernel,
        base.max_gflops,
        rcm.max_gflops,
        rcm.max_gflops / base.max_gflops.max(1e-12)
    );
    println!("  engine:     {stats}");

    // --- Export the registry: JSON + Prometheus. ---------------------
    match &opts.export_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir).expect("creating --export-dir");
            std::fs::write(dir.join("serve.json"), snap.to_json()).expect("writing serve.json");
            std::fs::write(dir.join("serve.prom"), snap.to_prometheus())
                .expect("writing serve.prom");
            eprintln!("wrote {}/serve.{{json,prom}}", dir.display());
        }
        None => {
            println!("--- telemetry snapshot (json) ---");
            println!("{}", snap.to_json());
            println!("--- telemetry snapshot (prometheus) ---");
            print!("{}", snap.to_prometheus());
        }
    }

    if hit_rate < 0.5 {
        eprintln!(
            "warning: hit rate below 50% — trace too short or cache too small \
             for this key space"
        );
        std::process::exit(1);
    }
}
