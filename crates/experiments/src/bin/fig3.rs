//! Regenerates Fig. 3: box plots of 2D (nonzero-balanced) SpMV speedup
//! after reordering.

use experiments::cli::parse_args;
use experiments::fmt::render_boxplot;
use experiments::sweep::{speedup_box, sweep_corpus, SweepConfig, ORDERINGS};
use spmv::KernelKind;

fn main() {
    let opts = parse_args();
    let machines = opts.machines();
    let specs = corpus::standard_corpus(opts.size);
    let cfg = SweepConfig::for_size(opts.size);
    eprintln!("sweeping {} matrices ...", specs.len());
    let sweeps = sweep_corpus(&specs, &machines, &cfg, true);

    println!(
        "Fig. 3: speedup of the nonzero-balanced CSR SpMV kernel (2D algorithm) after reordering."
    );
    println!(
        "({} matrices; boxes show min |--[q1 =median= q3]--| max on a log scale)\n",
        specs.len()
    );
    for (mi, m) in machines.iter().enumerate() {
        println!("== {} ({} threads) ==", m.name, m.threads);
        let entries: Vec<(String, spfeatures::BoxStats)> = (1..ORDERINGS.len())
            .filter_map(|o| {
                speedup_box(&sweeps, o, mi, KernelKind::TwoD).map(|b| (ORDERINGS[o].to_string(), b))
            })
            .collect();
        print!("{}", render_boxplot(&entries, 0.125, 8.0, 57));
        println!();
    }
}
