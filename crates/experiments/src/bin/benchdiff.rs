//! Compare a fresh micro-benchmark run against the recorded
//! `BENCH_PR*.json` trajectory at the repository root.
//!
//! Two probes, chosen because each guards a tentpole optimisation from
//! an earlier PR and runs in well under a second:
//!
//! 1. **Team dispatch** (vs. `BENCH_PR3.json`): per-call cost of the
//!    1D SpMV kernel on the persistent [`ThreadTeam`], on the same
//!    deliberately tiny matrix the original bench used. A regression
//!    here means the executor hot path grew per-call overhead.
//! 2. **Splice vs. full recompute** (vs. `BENCH_PR8.json`): the RCM
//!    1%-dirty point of the `disjoint_meshes` family. A regression
//!    here means incremental reordering lost its advantage.
//! 3. **AMD ordering** (vs. `BENCH_PR10.json`): the round-based
//!    multiple-elimination `amd_order_on` on the same R-MAT graph the
//!    original bench recorded, sequential path. A regression here
//!    means the quotient-graph round machinery grew per-pivot cost.
//!
//! Tolerances are deliberately generous (5x on absolute per-call time,
//! 4x on relative speedup) — this is a tripwire for order-of-magnitude
//! regressions on shared CI hardware, not a precision benchmark.
//! Results are written to `results/benchdiff.json`.
//!
//! Usage: `benchdiff [--test]`
//!
//! `--test` (the ci.sh mode) validates that the baseline files parse
//! and carry the expected fields, runs both probes at smoke iteration
//! counts, and exits 0 without enforcing thresholds — structural
//! validation, not a timing gate.

use reorder::{splice_ordering_on, ComponentOrdering, Rcm, ReorderAlgorithm, ReorderExec};
use sparsemat::{CsrMatrix, EdgeOp};
use spmv::{spmv_1d, Plan1d, ThreadTeam};
use std::hint::black_box;
use std::path::Path;
use std::time::Instant;

/// Baseline numbers extracted from the trajectory files.
struct Baseline {
    team_us_per_call: f64,
    splice_speedup: f64,
    splice_full_ms: f64,
    splice_splice_ms: f64,
    amd_seq_ms: f64,
}

/// Load the two baseline files, failing with a clear message when a
/// file is missing or its schema drifted.
fn load_baseline(root: &Path) -> Result<Baseline, String> {
    let read = |name: &str| -> Result<serde_json::Value, String> {
        let text = std::fs::read_to_string(root.join(name))
            .map_err(|e| format!("{name}: {e} (run from the repository, or re-record it)"))?;
        serde_json::from_str(&text).map_err(|e| format!("{name}: parse error: {e:?}"))
    };

    let pr3 = read("BENCH_PR3.json")?;
    let team_us_per_call = pr3
        .get("team_us_per_call")
        .and_then(serde_json::Value::as_f64)
        .ok_or("BENCH_PR3.json: missing team_us_per_call")?;

    let pr8 = read("BENCH_PR8.json")?;
    let sweep = pr8
        .get("sweep")
        .and_then(serde_json::Value::as_array)
        .ok_or("BENCH_PR8.json: missing sweep array")?;
    let row = sweep
        .iter()
        .find(|r| {
            r.get("family").and_then(serde_json::Value::as_str) == Some("disjoint_meshes")
                && r.get("algo").and_then(serde_json::Value::as_str) == Some("rcm")
                && r.get("dirty_components_pct")
                    .and_then(serde_json::Value::as_u64)
                    == Some(1)
        })
        .ok_or("BENCH_PR8.json: no disjoint_meshes/rcm/1% sweep row")?;
    let field = |name: &str| -> Result<f64, String> {
        row.get(name)
            .and_then(serde_json::Value::as_f64)
            .ok_or_else(|| format!("BENCH_PR8.json: sweep row missing {name}"))
    };
    let pr10 = read("BENCH_PR10.json")?;
    let amd_seq_ms = pr10
        .get("amd_round_based_seq_ms")
        .and_then(serde_json::Value::as_f64)
        .ok_or("BENCH_PR10.json: missing amd_round_based_seq_ms")?;

    Ok(Baseline {
        team_us_per_call,
        splice_speedup: field("speedup")?,
        splice_full_ms: field("full_ms")?,
        splice_splice_ms: field("splice_ms")?,
        amd_seq_ms,
    })
}

/// Mean seconds per call of `f` over `iters` calls, after warm-up.
fn time_per_call(iters: u32, mut f: impl FnMut()) -> f64 {
    for _ in 0..iters / 10 + 1 {
        f();
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_secs_f64() / iters as f64
}

/// Median seconds of one call over `reps` calls, after warm-up.
fn time_median(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|x, y| x.partial_cmp(y).expect("finite timings"));
    times[times.len() / 2]
}

/// Probe 1: per-call team dispatch cost, microseconds. Same matrix and
/// shape as the `team_overhead` bench that recorded BENCH_PR3.json.
fn probe_team_us(iters: u32) -> f64 {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get().min(8));
    let a = corpus::scramble(&corpus::mesh2d(24, 24), 1);
    let plan = Plan1d::new(&a, threads);
    let team = ThreadTeam::new(threads);
    let x: Vec<f64> = (0..a.ncols()).map(|i| (i % 13) as f64).collect();
    let mut y = vec![0.0; a.nrows()];
    time_per_call(iters, || spmv_1d(&a, &plan, &team, black_box(&x), &mut y)) * 1e6
}

/// A delta dirtying one component of `a`: remove one symmetric
/// off-diagonal edge inside the first component that has one.
fn one_component_delta(a: &CsrMatrix, cached: &ComponentOrdering) -> Vec<EdgeOp> {
    for range in &cached.ranges {
        let members = &cached.order[range.start..range.start + range.len];
        for &v in members {
            let (cols, _) = a.row(v as usize);
            if let Some(&c) = cols.iter().find(|&&c| c != v) {
                return vec![
                    EdgeOp::Remove {
                        row: v as usize,
                        col: c as usize,
                    },
                    EdgeOp::Remove {
                        row: c as usize,
                        col: v as usize,
                    },
                ];
            }
        }
    }
    panic!("no off-diagonal edge in any component");
}

/// Probe 2: full-vs-splice times at ~1% dirty on the BENCH_PR8 mesh
/// family (smaller in `--test` mode), milliseconds.
fn probe_splice_ms(reps: usize, regions: usize) -> (f64, f64) {
    let a = corpus::disjoint_meshes(regions, 14, 12, 8);
    let algo = Rcm::default();
    let rx = ReorderExec::sequential();
    let cached = algo
        .compute_components_on(&a, &rx)
        .expect("parent ordering")
        .expect("RCM is component-capable");
    let ops = one_component_delta(&a, &cached);
    let mut child = a.clone();
    let report = child.apply_delta(&ops).expect("delta applies");

    let run_full = || {
        black_box(
            algo.compute_components_on(&child, &rx)
                .expect("full recompute")
                .expect("component-capable"),
        );
    };
    let run_splice = || {
        black_box(
            splice_ordering_on(
                &algo,
                &child,
                &cached.order,
                &cached.ranges,
                &report.touched_rows,
                &rx,
            )
            .expect("splice")
            .expect("splice accepted"),
        );
    };
    let full_ms = time_median(reps, run_full) * 1e3;
    let splice_ms = time_median(reps, run_splice) * 1e3;
    (full_ms, splice_ms)
}

/// Probe 3: the round-based AMD ordering, sequential path,
/// milliseconds. Full runs use the exact BENCH_PR10 graph
/// (`rmat(14, 8, 42)`); `--test` runs a smaller cousin, which is why
/// the threshold is only enforced in full mode.
fn probe_amd_ms(reps: usize, test_mode: bool) -> f64 {
    let a = if test_mode {
        corpus::rmat(11, 6, 7)
    } else {
        corpus::rmat(14, 8, 42)
    };
    let g = sparsegraph::Graph::from_matrix(&a).expect("ordering graph");
    let rx = ReorderExec::sequential();
    time_median(reps, || {
        black_box(reorder::amd_order_on(&g, true, 0, &rx));
    }) * 1e3
}

fn main() {
    let test_mode = std::env::args().any(|arg| arg == "--test");
    let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));

    let baseline = match load_baseline(root) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("benchdiff: baseline error: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "baseline: team {:.3} us/call; splice {:.3} ms vs full {:.3} ms ({:.2}x); \
         amd {:.3} ms",
        baseline.team_us_per_call,
        baseline.splice_splice_ms,
        baseline.splice_full_ms,
        baseline.splice_speedup,
        baseline.amd_seq_ms
    );

    // Smoke counts keep --test under a second; real runs match the
    // original benches' scale closely enough for a 5x tripwire.
    let (iters, reps, regions) = if test_mode {
        (50, 3, 20)
    } else {
        (2_000, 5, 100)
    };

    let team_us = probe_team_us(iters);
    let (full_ms, splice_ms) = probe_splice_ms(reps, regions);
    let speedup = full_ms / splice_ms;
    let amd_ms = probe_amd_ms(reps, test_mode);
    println!(
        "fresh:    team {team_us:.3} us/call; splice {splice_ms:.3} ms vs full \
         {full_ms:.3} ms ({speedup:.2}x); amd {amd_ms:.3} ms"
    );

    let mut failures = Vec::new();
    if !test_mode {
        // Absolute tripwire on the executor hot path.
        let team_limit = baseline.team_us_per_call * 5.0;
        if team_us > team_limit {
            failures.push(format!(
                "team dispatch {team_us:.3} us/call exceeds 5x baseline ({team_limit:.3})"
            ));
        }
        // Relative tripwire on incremental reordering: the splice must
        // keep at least a quarter of its recorded advantage and still
        // beat the full recompute outright.
        let speedup_floor = (baseline.splice_speedup / 4.0).max(1.0);
        if speedup < speedup_floor {
            failures.push(format!(
                "splice speedup {speedup:.2}x fell below floor {speedup_floor:.2}x \
                 (baseline {:.2}x)",
                baseline.splice_speedup
            ));
        }
        // Absolute tripwire on the AMD round machinery.
        let amd_limit = baseline.amd_seq_ms * 5.0;
        if amd_ms > amd_limit {
            failures.push(format!(
                "amd ordering {amd_ms:.3} ms exceeds 5x baseline ({amd_limit:.3})"
            ));
        }
    }

    let results_dir = root.join("results");
    let out = format!(
        "{{\n  \"bench\": \"benchdiff\",\n  \"mode\": \"{}\",\n  \
         \"team_us_per_call\": {{ \"baseline\": {:.3}, \"fresh\": {:.3} }},\n  \
         \"splice_1pct\": {{ \"baseline_speedup\": {:.2}, \"fresh_speedup\": {:.2}, \
         \"fresh_full_ms\": {:.3}, \"fresh_splice_ms\": {:.3} }},\n  \
         \"amd_seq_ms\": {{ \"baseline\": {:.3}, \"fresh\": {:.3} }},\n  \
         \"regressions\": [{}]\n}}\n",
        if test_mode { "test" } else { "full" },
        baseline.team_us_per_call,
        team_us,
        baseline.splice_speedup,
        speedup,
        full_ms,
        splice_ms,
        baseline.amd_seq_ms,
        amd_ms,
        failures
            .iter()
            .map(|f| format!("\"{}\"", f.replace('"', "'")))
            .collect::<Vec<_>>()
            .join(", ")
    );
    if std::fs::create_dir_all(&results_dir)
        .and_then(|()| std::fs::write(results_dir.join("benchdiff.json"), &out))
        .is_ok()
    {
        println!("recorded to results/benchdiff.json");
    }

    if failures.is_empty() {
        println!(
            "benchdiff: ok — fresh run within tolerance of the recorded trajectory{}",
            if test_mode {
                " (smoke mode, thresholds not enforced)"
            } else {
                ""
            }
        );
    } else {
        for f in &failures {
            eprintln!("benchdiff: REGRESSION: {f}");
        }
        std::process::exit(1);
    }
}
