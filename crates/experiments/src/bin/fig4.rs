//! Regenerates Fig. 4: in-depth analysis of six matrix classes on
//! three platforms (AMD, Intel, ARM), for both kernels and all six
//! reordering schemes, reporting speedups and 1D imbalance factors.

use archsim::machine_by_name;
use experiments::cli::parse_args;
use experiments::fmt::render_table;
use experiments::sweep::{sweep_matrix, SweepConfig, ORDERINGS};

fn main() {
    let opts = parse_args();
    // One platform per vendor, as in the paper's Fig. 4 analysis.
    let machines = vec![
        machine_by_name("Milan B").unwrap(),  // AMD
        machine_by_name("Ice Lake").unwrap(), // Intel
        machine_by_name("Hi1620").unwrap(),   // ARM
    ];
    let cfg = SweepConfig::for_size(opts.size);

    println!("Fig. 4: performance analysis of matrix classes.");
    println!("Classes: 1-3 improve (locality / locality+balance / balance only),");
    println!("4 unchanged, 5 reordering provokes 1D imbalance, 6 mixed.\n");

    for (class, spec) in corpus::class_representatives(opts.size) {
        let s = sweep_matrix(&spec, &machines, &cfg);
        println!(
            "== Class {class}: {} ({} rows, {} nnz) ==",
            s.name, s.nrows, s.nnz
        );
        let mut header = vec!["ordering".to_string()];
        for m in &machines {
            header.push(format!("{} 1D", m.name));
            header.push(format!("{} 2D", m.name));
        }
        header.push("imb.factor(1D)".to_string());
        let mut rows = Vec::new();
        for o in 0..ORDERINGS.len() {
            let mut row = vec![s.runs[o].ordering.clone()];
            for mi in 0..machines.len() {
                row.push(format!("{:.2}x", s.speedup_1d(o, mi)));
                row.push(format!("{:.2}x", s.speedup_2d(o, mi)));
            }
            row.push(format!("{:.2}", s.runs[o].per_machine[0].imbalance_1d));
            rows.push(row);
        }
        println!("{}", render_table(&header, &rows));
    }
}
