//! `frontier`: the "when does reordering win" break-even sweep.
//!
//! For each (matrix family, algorithm) pair the sweep measures, on
//! this host: the per-iteration SpMV time in the original order, the
//! same after reordering, and the one-time reorder cost. From those
//! it derives the paper's amortisation frontier (§4.7),
//!
//! ```text
//! break_even_reps = reorder_cost / (t_base * (1 - t_reordered/t_base))
//!                 = reorder_cost / (t_base - t_reordered)
//! ```
//!
//! — the number of SpMV repetitions a workload must perform before
//! paying for the ordering is worth it. A cell of the frontier table
//! at repetition count `r` says "reorder" iff `r >= break_even_reps`.
//!
//! The sweep then replays each cell's traffic (`r` identical requests)
//! through a fresh adaptive [`policy::PolicyEngine`] fed the measured
//! times, and compares the policy's post-warm-up decision against the
//! table's ground truth. Outside `--test` mode the run fails (exit 1)
//! if agreement falls below [`AGREEMENT_GATE`].
//!
//! Artefacts: `results/frontier.md` (break-even table + agreement
//! grid) and `results/frontier.json` (raw numbers), unless `--test`.
//!
//! Usage: `frontier [--size small|medium|large] [--out DIR] [--test]`

use std::sync::Arc;

use corpus::{standard_corpus, CorpusSize, MatrixSpec};
use engine::AlgoSpec;
use policy::{PolicyConfig, PolicyEngine, PolicyMode};
use reorder::{timed_permutation_on, ReorderExec};
use sparsemat::CsrMatrix;
use spmv::{measure_spmv_in, KernelKind, MeasureConfig};
use telemetry::Registry;

/// Minimum fraction of cells where the adaptive policy must agree with
/// the measured break-even ground truth.
const AGREEMENT_GATE: f64 = 0.8;

/// Repetition counts forming the frontier's traffic axis. Chosen to
/// straddle typical break-even points on a small host while avoiding
/// the immediate neighbourhood of the policy's probe threshold (8),
/// where both verdicts are legitimately ambiguous.
const REPS_AXIS: &[u64] = &[1, 2, 4, 16, 64, 256, 1024];

struct Options {
    size: CorpusSize,
    out: String,
    test: bool,
}

fn parse_args() -> Options {
    let mut opts = Options {
        size: CorpusSize::Small,
        out: "results".to_string(),
        test: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--size" => {
                let v = it.next().unwrap_or_default();
                opts.size = match v.as_str() {
                    "small" => CorpusSize::Small,
                    "medium" => CorpusSize::Medium,
                    "large" => CorpusSize::Large,
                    other => {
                        eprintln!("unknown --size '{other}' (small|medium|large)");
                        std::process::exit(2);
                    }
                };
            }
            "--out" => {
                opts.out = it.next().unwrap_or_default();
                if opts.out.is_empty() {
                    eprintln!("--out requires a directory");
                    std::process::exit(2);
                }
            }
            "--test" => opts.test = true,
            "--help" | "-h" => {
                println!(
                    "usage: frontier [--size small|medium|large] [--out DIR] [--test]\n\
                     \n\
                     Measures the reordering break-even frontier on this host and\n\
                     checks the adaptive policy reproduces it. --test runs a tiny\n\
                     smoke sweep without writing artefacts or enforcing the gate."
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument '{other}' (try --help)");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// One measured (matrix, algorithm) pair.
struct PairResult {
    matrix: String,
    algo: AlgoSpec,
    nnz: usize,
    t_base: f64,
    t_reordered: f64,
    reorder_cost: f64,
    /// `f64::INFINITY` when the reordering does not speed SpMV up.
    break_even: f64,
    /// Per-REPS_AXIS cell: (table verdict, adaptive verdict).
    cells: Vec<(bool, bool)>,
}

/// The sweep's matrix list: one representative per structural group,
/// so each family contributes exactly one row.
fn family_representatives(size: CorpusSize) -> Vec<MatrixSpec> {
    let mut seen: Vec<String> = Vec::new();
    let mut picks = Vec::new();
    for spec in standard_corpus(size) {
        if !seen.contains(&spec.group) {
            seen.push(spec.group.clone());
            picks.push(spec);
        }
    }
    picks
}

/// Replay `reps` identical requests for (matrix, algo) through a fresh
/// adaptive policy engine, feeding it the measured times, and return
/// its post-warm-up verdict on the cell's question: does paying for
/// this reordering amortise within `reps` repetitions? The verdict
/// comes from [`PolicyEngine::would_amortize`] — the ledger's
/// converged observations — falling back to the live decision when
/// the replay was too short to gather data.
fn adaptive_verdict(
    registry: &Arc<Registry>,
    a: &CsrMatrix,
    hash: u128,
    algo: AlgoSpec,
    pair: &PairResult,
    reps: u64,
) -> bool {
    let policy = PolicyEngine::new(PolicyConfig {
        mode: PolicyMode::Adaptive,
        registry: Some(Arc::clone(registry)),
        ..PolicyConfig::default()
    });
    let mut cached = false;
    for _ in 0..reps {
        let decision = policy.decide(a, hash, algo, cached);
        if decision.reorders() {
            if !cached {
                policy.record_reorder_paid(hash, algo, pair.reorder_cost);
                cached = true;
            }
            policy.observe_spmv(hash, algo, pair.t_reordered);
        } else {
            policy.observe_spmv(hash, AlgoSpec::Original, pair.t_base);
        }
    }
    policy
        .would_amortize(hash, algo, reps)
        .unwrap_or_else(|| policy.decide(a, hash, algo, cached).reorders())
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.9}")
    } else {
        "null".to_string()
    }
}

fn write_artifacts(out: &str, size: CorpusSize, pairs: &[PairResult], agreement: f64) {
    std::fs::create_dir_all(out).expect("create output directory");

    let mut md = String::new();
    md.push_str("# Reordering break-even frontier\n\n");
    md.push_str(&format!(
        "Host-measured amortisation frontier (corpus size: {size:?}, kernel: 1D CSR).\n\
         `break-even` is the number of SpMV repetitions needed to pay for the\n\
         reordering; a cell says `RE` when reordering wins at that repetition\n\
         count, `--` when staying in the original order wins. `policy` cells\n\
         show the adaptive policy's decision after replaying that much traffic;\n\
         `*` marks disagreement with the measured ground truth.\n\n"
    ));
    md.push_str("| matrix | algo | nnz | t_base | t_reord | cost | break-even |");
    for reps in REPS_AXIS {
        md.push_str(&format!(" r={reps} |"));
    }
    md.push('\n');
    md.push_str("|---|---|---|---|---|---|---|");
    for _ in REPS_AXIS {
        md.push_str("---|");
    }
    md.push('\n');
    for p in pairs {
        let be = if p.break_even.is_finite() {
            format!("{:.0}", p.break_even.ceil())
        } else {
            "never".to_string()
        };
        md.push_str(&format!(
            "| {} | {} | {} | {:.2} us | {:.2} us | {:.2} ms | {} |",
            p.matrix,
            p.algo.name(),
            p.nnz,
            p.t_base * 1e6,
            p.t_reordered * 1e6,
            p.reorder_cost * 1e3,
            be,
        ));
        for (table, adaptive) in &p.cells {
            let cell = match (table, adaptive) {
                (true, true) => "RE",
                (false, false) => "--",
                (true, false) => "--*",
                (false, true) => "RE*",
            };
            md.push_str(&format!(" {cell} |"));
        }
        md.push('\n');
    }
    md.push_str(&format!(
        "\nAdaptive policy agreement: {:.1}% of {} cells (gate: {:.0}%).\n",
        agreement * 100.0,
        pairs.len() * REPS_AXIS.len(),
        AGREEMENT_GATE * 100.0
    ));
    std::fs::write(format!("{out}/frontier.md"), md).expect("write frontier.md");

    let mut rows = Vec::new();
    for p in pairs {
        let cells: Vec<String> = p
            .cells
            .iter()
            .zip(REPS_AXIS)
            .map(|((table, adaptive), reps)| {
                format!(
                    "{{\"reps\":{reps},\"table_reorders\":{table},\"adaptive_reorders\":{adaptive}}}"
                )
            })
            .collect();
        rows.push(format!(
            "    {{\"matrix\":\"{}\",\"algo\":\"{}\",\"nnz\":{},\"t_base_s\":{},\
             \"t_reordered_s\":{},\"reorder_cost_s\":{},\"break_even_reps\":{},\
             \"cells\":[{}]}}",
            p.matrix,
            p.algo.name(),
            p.nnz,
            json_f64(p.t_base),
            json_f64(p.t_reordered),
            json_f64(p.reorder_cost),
            json_f64(p.break_even),
            cells.join(",")
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"frontier\",\n  \"size\": \"{size:?}\",\n  \
         \"reps_axis\": {REPS_AXIS:?},\n  \"agreement\": {:.4},\n  \
         \"agreement_gate\": {AGREEMENT_GATE},\n  \"pairs\": [\n{}\n  ]\n}}\n",
        agreement,
        rows.join(",\n")
    );
    std::fs::write(format!("{out}/frontier.json"), json).expect("write frontier.json");
}

fn main() {
    let opts = parse_args();
    let registry = Arc::new(Registry::new());
    let rx = ReorderExec::sequential();
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let measure = MeasureConfig {
        repetitions: if opts.test { 8 } else { 30 },
        warmup: 3,
        nthreads: threads,
    };

    let mut specs = family_representatives(opts.size);
    let algos: Vec<AlgoSpec> = if opts.test {
        specs.truncate(2);
        vec![AlgoSpec::Rcm]
    } else {
        vec![AlgoSpec::Rcm, AlgoSpec::Amd, AlgoSpec::Gp { parts: 8 }]
    };

    let mut pairs: Vec<PairResult> = Vec::new();
    for spec in &specs {
        let a = Arc::new(spec.build());
        let hash = a.content_hash();
        let base = measure_spmv_in(&registry, &a, KernelKind::OneD, &measure);
        for &algo in &algos {
            // timed_permutation_on also calibrates the
            // `reorder.<algo>.nnz_per_s` gauge the policy's cost model
            // reads, so the replayed decisions see live throughput.
            let timed = match timed_permutation_on(&registry, &*algo.instantiate(), &a, &rx) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("frontier: {} / {}: {e:?} (skipped)", spec.name, algo.name());
                    continue;
                }
            };
            let reorder_cost = timed.elapsed.as_secs_f64();
            let b = Arc::new(timed.result.apply(&a).expect("permutation applies"));
            let reordered = measure_spmv_in(&registry, &b, KernelKind::OneD, &measure);

            let (t_base, t_reordered) = (base.min_time, reordered.min_time);
            let break_even = if t_base > t_reordered {
                reorder_cost / (t_base - t_reordered)
            } else {
                f64::INFINITY
            };
            let mut pair = PairResult {
                matrix: spec.name.clone(),
                algo,
                nnz: a.nnz(),
                t_base,
                t_reordered,
                reorder_cost,
                break_even,
                cells: Vec::new(),
            };
            for &reps in REPS_AXIS {
                let table = (reps as f64) >= break_even;
                let adaptive = adaptive_verdict(&registry, &a, hash, algo, &pair, reps);
                pair.cells.push((table, adaptive));
            }
            eprintln!(
                "frontier: {} / {}: base {:.2} us, reordered {:.2} us, cost {:.2} ms, \
                 break-even {:.0}",
                spec.name,
                algo.name(),
                t_base * 1e6,
                t_reordered * 1e6,
                reorder_cost * 1e3,
                break_even.min(1e9),
            );
            pairs.push(pair);
        }
    }

    let total: usize = pairs.iter().map(|p| p.cells.len()).sum();
    let agree: usize = pairs
        .iter()
        .flat_map(|p| p.cells.iter())
        .filter(|(table, adaptive)| table == adaptive)
        .count();
    let agreement = if total == 0 {
        0.0
    } else {
        agree as f64 / total as f64
    };

    println!(
        "frontier: {} pair(s), {} cell(s), adaptive agreement {:.1}% (gate {:.0}%)",
        pairs.len(),
        total,
        agreement * 100.0,
        AGREEMENT_GATE * 100.0
    );
    for p in &pairs {
        let be = if p.break_even.is_finite() {
            format!("{:.0} reps", p.break_even.ceil())
        } else {
            "never".to_string()
        };
        println!(
            "  {:28} {:4}  speedup {:.2}x  cost {:8.2} ms  break-even {}",
            p.matrix,
            p.algo.name(),
            p.t_base / p.t_reordered,
            p.reorder_cost * 1e3,
            be
        );
    }

    if opts.test {
        println!("frontier: --test smoke complete (no artefacts written, gate not enforced)");
        return;
    }
    write_artifacts(&opts.out, opts.size, &pairs, agreement);
    println!(
        "frontier: wrote {}/frontier.md and {}/frontier.json",
        opts.out, opts.out
    );
    if agreement < AGREEMENT_GATE {
        eprintln!(
            "frontier: adaptive agreement {:.1}% below gate {:.0}%",
            agreement * 100.0,
            AGREEMENT_GATE * 100.0
        );
        std::process::exit(1);
    }
}
