//! Regenerates the §4.2 reference measurement: SpMV on a dense
//! tall-and-skinny matrix stored in CSR. The paper reports ~53 Gflop/s
//! (317 GB/s, 77 % of peak bandwidth) on the 128-core Milan B for a
//! 96 000 x 4 000 matrix; this binary runs the machine model on a
//! scaled version of the same shape.

use archsim::{simulate_spmv_1d, simulate_spmv_2d};
use corpus::tall_dense;
use experiments::cli::parse_args;
use experiments::fmt::render_table;

fn main() {
    let opts = parse_args();
    let cols = match opts.size {
        corpus::CorpusSize::Small => 400,
        corpus::CorpusSize::Medium => 1_000,
        corpus::CorpusSize::Large => 4_000,
    };
    println!("Reference: dense tall-skinny matrix in CSR, scaled per machine so the");
    println!("matrix exceeds its last-level cache (the paper's 96 000 x 4 000 matrix");
    println!("is 1.5 GiB and does not fit in any of the L3s).");
    println!("Paper (§4.2): ~53 Gflop/s / 317 GB/s on Milan B = 77 % of peak.\n");

    let header: Vec<String> = [
        "Machine",
        "rows x cols",
        "1D Gflop/s",
        "2D Gflop/s",
        "GB/s (1D)",
        "% of nominal BW",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rowsv = Vec::new();
    for m in opts.machines() {
        // Scale rows so the CSR image is at least 1.5x the machine's L3.
        let min_bytes = (m.l3_total_bytes() as f64 * 1.5) as usize;
        let rows = (min_bytes / (cols * 12)).max(9_600);
        let a = tall_dense(rows, cols);
        let r1 = simulate_spmv_1d(&a, &m);
        let r2 = simulate_spmv_2d(&a, &m);
        let gbs = r1.dram_bytes / r1.seconds / 1e9;
        rowsv.push(vec![
            m.name.clone(),
            format!("{}x{}", rows, cols),
            format!("{:.1}", r1.gflops),
            format!("{:.1}", r2.gflops),
            format!("{:.1}", gbs),
            format!("{:.0}%", 100.0 * gbs / m.mem_bw_gbs),
        ]);
    }
    println!("{}", render_table(&header, &rowsv));
}
