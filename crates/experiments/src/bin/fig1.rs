//! Regenerates Fig. 1: sparsity patterns of three matrices under RCM,
//! ND and GP reordering, with SpMV speedups on Milan B and Ice Lake.
//!
//! The paper uses Freescale/Freescale2, SNAP/com-Amazon and
//! GenBank/kmer_V1r; the corpus provides structural stand-ins for each
//! (see DESIGN.md).

use archsim::{machine_by_name, simulate_spmv_1d};
use corpus::fig1_matrices;
use experiments::cli::parse_args;
use experiments::sweep::SweepConfig;
use reorder::{Gp, Nd, Rcm, ReorderAlgorithm};
use sparsemat::{spy_string, SpyOptions};

fn main() {
    let opts = parse_args();
    let cfg = SweepConfig::for_size(opts.size);
    let milan = machine_by_name("Milan B").expect("registry");
    let icelake = machine_by_name("Ice Lake").expect("registry");
    let spy = SpyOptions {
        width: 36,
        height: 18,
        border: true,
    };

    println!("Fig. 1: matrices reordered with RCM, ND and GP.");
    println!("Numbers below each plot: SpMV speedup (1D kernel) on Milan B / Ice Lake.\n");

    for spec in fig1_matrices(opts.size) {
        let a = spec.build();
        println!(
            "=== {} ({} rows, {} nnz) ===",
            spec.name,
            a.nrows(),
            a.nnz()
        );
        let base_milan = simulate_spmv_1d(&a, &milan).gflops;
        let base_ice = simulate_spmv_1d(&a, &icelake).gflops;
        println!("--- Original ---");
        print!("{}", spy_string(&a, &spy));
        println!("speedup: 1.00 / 1.00\n");

        let algs: Vec<(&str, Box<dyn ReorderAlgorithm>)> = vec![
            ("RCM", Box::new(Rcm::default())),
            ("ND", Box::new(Nd::default())),
            ("GP", Box::new(Gp::new(cfg.gp_parts))),
        ];
        for (name, alg) in algs {
            let b = alg
                .compute(&a)
                .expect("fig1 matrices are square")
                .apply(&a)
                .expect("apply");
            let s_milan = simulate_spmv_1d(&b, &milan).gflops / base_milan;
            let s_ice = simulate_spmv_1d(&b, &icelake).gflops / base_ice;
            println!("--- {name} ---");
            print!("{}", spy_string(&b, &spy));
            println!("speedup: {s_milan:.2} / {s_ice:.2}\n");
        }
    }
}
