//! `tracecheck`: validate a directory of flight-recorder dumps.
//!
//! `serve --trace-dir DIR` writes one `trace-<id>.json` (Chrome
//! trace-event format) per dumped request. This binary is the CI gate
//! on those artefacts: it proves the trace files a run produces are
//! loadable by the tools they target (Perfetto, `chrome://tracing`)
//! and that the instrumentation actually covered the serving path.
//!
//! Checks, in order:
//!
//! 1. the directory contains at least one `trace-*.json`;
//! 2. every file parses as JSON and has a non-empty `traceEvents`
//!    array;
//! 3. in every file, `B`/`E` duration events are balanced per
//!    `(pid, tid)` lane with matching names — the invariant Chrome's
//!    viewer needs to reconstruct the span stack;
//! 4. at least one file contains a span for **every** pipeline stage
//!    (tier admission wait, policy decision, engine request, cache
//!    lookup, queue wait, reorder, plan, reorder permute, SpMV
//!    measure, team compute, serve-level SpMV, inverse-permutation
//!    answer delivery);
//! 5. at least one file shows `spmv.team.compute` on two or more
//!    distinct lanes — the per-worker timelines, not a single merged
//!    track;
//! 6. in every file, each `reorder.*` sub-stage span (symmetrize,
//!    levels, permute, splice) opens while a parent reorder stage
//!    (`engine.reorder` or `serve.spmv`) is open on the same lane —
//!    sub-stages nest under their pipeline stage, they never float;
//! 7. every stage named with `--require STAGE` appears in at least one
//!    file — how CI pins workload-specific stages (e.g.
//!    `--require reorder.splice` after a `--mutate-rate` run proves
//!    the delta path actually spliced instead of recomputing).
//!
//! Exits 0 and prints a per-file event census on success; exits 1
//! with a diagnostic on the first violated check. With `--summary`, a
//! per-stage table (span count, total and mean duration across every
//! file) prints after the census — the quick "where did the time go"
//! read on a trace directory without opening a viewer.
//!
//! Usage: `tracecheck DIR [--require STAGE]... [--summary]`

use serde_json::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Every stage of the serving path; at least one dumped trace must
/// contain all of them.
const REQUIRED_STAGES: &[&str] = &[
    "admission.wait",
    "policy.decide",
    "engine.request",
    "engine.cache.lookup",
    "engine.queue.wait",
    "engine.reorder",
    "engine.plan",
    "reorder.permute",
    "serve.spmv",
    "answer.unpermute",
    "spmv.measure",
    "spmv.team.compute",
];

/// Reordering sub-stages: whenever one opens, a parent reorder stage
/// must already be open on the same lane. (`reorder.symmetrize` and
/// `reorder.levels` appear only on cache-miss RCM/GPS jobs and
/// `reorder.splice` only when a delta descendant finds a cached
/// ancestor, so they are nesting-checked but not required;
/// `reorder.permute` runs on every dumped request and is required
/// above.)
const REORDER_SUBSTAGES: &[&str] = &[
    "reorder.symmetrize",
    "reorder.levels",
    "reorder.permute",
    "reorder.splice",
    "reorder.amd.select",
    "reorder.amd.eliminate",
    "reorder.amd.update",
];

/// Stages a `reorder.*` sub-stage may nest under. `tier.execute` is
/// the serving tier's per-request stage: its prepared-matrix miss path
/// applies the ordering right there on the dispatcher lane.
/// `reorder.splice` is both a sub-stage (it opens under
/// `engine.reorder`) and a parent: its dirty-component recompute
/// re-symmetrises the mutated matrix under the splice span.
const REORDER_PARENTS: &[&str] = &[
    "engine.reorder",
    "serve.spmv",
    "tier.execute",
    "reorder.splice",
];

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("tracecheck: {msg}");
    std::process::exit(1);
}

/// Per-stage duration accumulator: span count and total microseconds.
#[derive(Default, Clone, Copy)]
struct StageTotals {
    count: u64,
    total_us: f64,
}

/// Validate one Chrome-trace file; returns the set of span names it
/// contains, the number of distinct lanes carrying
/// `spmv.team.compute`, and per-stage duration totals.
fn check_file(path: &Path) -> (BTreeSet<String>, usize, BTreeMap<String, StageTotals>) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(format_args!("{}: {e}", path.display())));
    let doc = serde_json::from_str(&text)
        .unwrap_or_else(|e| fail(format_args!("{}: not valid JSON: {e:?}", path.display())));
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .unwrap_or_else(|| fail(format_args!("{}: no traceEvents array", path.display())));
    if events.is_empty() {
        fail(format_args!("{}: traceEvents is empty", path.display()));
    }

    let mut names: BTreeSet<String> = BTreeSet::new();
    let mut compute_lanes: BTreeSet<(u64, u64)> = BTreeSet::new();
    let mut totals: BTreeMap<String, StageTotals> = BTreeMap::new();
    // Per-lane open-span stack: Chrome matches each E against the most
    // recent unmatched B on the same (pid, tid). Each entry carries
    // its B timestamp (Chrome "ts" is microseconds) for --summary.
    let mut stacks: BTreeMap<(u64, u64), Vec<(String, f64)>> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let field = |key: &str| {
            ev.get(key)
                .unwrap_or_else(|| fail(format_args!("{}: event {i} lacks {key}", path.display())))
        };
        let ph = field("ph")
            .as_str()
            .unwrap_or_else(|| {
                fail(format_args!(
                    "{}: event {i}: ph not a string",
                    path.display()
                ))
            })
            .to_string();
        let name = field("name")
            .as_str()
            .unwrap_or_else(|| {
                fail(format_args!(
                    "{}: event {i}: name not a string",
                    path.display()
                ))
            })
            .to_string();
        let lane = (
            field("pid").as_u64().unwrap_or(0),
            field("tid").as_u64().unwrap_or(0),
        );
        let ts = ev.get("ts").and_then(Value::as_f64).unwrap_or(0.0);
        match ph.as_str() {
            "B" => {
                names.insert(name.clone());
                if name == "spmv.team.compute" {
                    compute_lanes.insert(lane);
                }
                let stack = stacks.entry(lane).or_default();
                if REORDER_SUBSTAGES.contains(&name.as_str())
                    && !stack
                        .iter()
                        .any(|(open, _)| REORDER_PARENTS.contains(&open.as_str()))
                {
                    fail(format_args!(
                        "{}: event {i}: '{name}' opened on lane {lane:?} with no \
                         enclosing reorder stage ({}); open spans: {stack:?}",
                        path.display(),
                        REORDER_PARENTS.join(" or "),
                    ));
                }
                stack.push((name, ts));
            }
            "E" => {
                let (open, opened_ts) =
                    stacks.entry(lane).or_default().pop().unwrap_or_else(|| {
                        fail(format_args!(
                            "{}: event {i}: E '{name}' on lane {lane:?} with no open span",
                            path.display()
                        ))
                    });
                if open != name {
                    fail(format_args!(
                        "{}: event {i}: E '{name}' closes open span '{open}' on lane {lane:?}",
                        path.display()
                    ));
                }
                let entry = totals.entry(name).or_default();
                entry.count += 1;
                entry.total_us += (ts - opened_ts).max(0.0);
            }
            "i" => {
                names.insert(name);
            }
            "M" => {}
            other => fail(format_args!(
                "{}: event {i}: unexpected phase '{other}'",
                path.display()
            )),
        }
    }
    for (lane, stack) in &stacks {
        if let Some((open, _)) = stack.last() {
            fail(format_args!(
                "{}: lane {lane:?} ends with unclosed span '{open}'",
                path.display()
            ));
        }
    }
    (names, compute_lanes.len(), totals)
}

fn main() {
    let mut dir: Option<String> = None;
    let mut required: Vec<String> = Vec::new();
    let mut summary = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        if arg == "--require" {
            required.push(it.next().unwrap_or_else(|| {
                eprintln!("--require needs a stage name");
                std::process::exit(2);
            }));
        } else if arg == "--summary" {
            summary = true;
        } else if dir.is_none() {
            dir = Some(arg);
        } else {
            eprintln!("usage: tracecheck DIR [--require STAGE]... [--summary]");
            std::process::exit(2);
        }
    }
    let dir = dir.unwrap_or_else(|| {
        eprintln!("usage: tracecheck DIR [--require STAGE]... [--summary]");
        std::process::exit(2);
    });
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| fail(format_args!("{dir}: {e}")))
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            let name = path.file_name()?.to_str()?;
            (name.starts_with("trace-") && name.ends_with(".json")).then_some(path)
        })
        .collect();
    files.sort();
    if files.is_empty() {
        fail(format_args!("{dir}: no trace-*.json files"));
    }

    let mut best_missing: Option<Vec<&str>> = None;
    let mut max_compute_lanes = 0usize;
    let mut all_names: BTreeSet<String> = BTreeSet::new();
    let mut stage_totals: BTreeMap<String, StageTotals> = BTreeMap::new();
    for path in &files {
        let (names, compute_lanes, totals) = check_file(path);
        max_compute_lanes = max_compute_lanes.max(compute_lanes);
        all_names.extend(names.iter().cloned());
        for (name, t) in totals {
            let entry = stage_totals.entry(name).or_default();
            entry.count += t.count;
            entry.total_us += t.total_us;
        }
        let missing: Vec<&str> = REQUIRED_STAGES
            .iter()
            .copied()
            .filter(|s| !names.contains(*s))
            .collect();
        println!(
            "{}: {} span name(s), {} compute lane(s){}",
            path.display(),
            names.len(),
            compute_lanes,
            if missing.is_empty() {
                " — all stages present".to_string()
            } else {
                format!(" — missing: {}", missing.join(", "))
            }
        );
        if best_missing
            .as_ref()
            .is_none_or(|b| missing.len() < b.len())
        {
            best_missing = Some(missing);
        }
    }
    match best_missing {
        Some(missing) if missing.is_empty() => {}
        Some(missing) => fail(format_args!(
            "no trace contains every pipeline stage; best file still missing: {}",
            missing.join(", ")
        )),
        None => unreachable!("files is non-empty"),
    }
    if max_compute_lanes < 2 {
        fail(format_args!(
            "no trace shows spmv.team.compute on >= 2 lanes (max seen: {max_compute_lanes})"
        ));
    }
    for stage in &required {
        if !all_names.contains(stage) {
            fail(format_args!(
                "--require {stage}: no trace file contains that span"
            ));
        }
    }
    if summary {
        println!("stage summary across {} file(s):", files.len());
        println!(
            "  {:<24} {:>8} {:>14} {:>12}",
            "stage", "spans", "total (us)", "mean (us)"
        );
        for (name, t) in &stage_totals {
            println!(
                "  {:<24} {:>8} {:>14.1} {:>12.1}",
                name,
                t.count,
                t.total_us,
                t.total_us / t.count.max(1) as f64
            );
        }
    }
    println!(
        "tracecheck: {} file(s) ok — balanced B/E, all {} stages covered, {} worker lane(s){}",
        files.len(),
        REQUIRED_STAGES.len(),
        max_compute_lanes,
        if required.is_empty() {
            String::new()
        } else {
            format!(", required stage(s) present: {}", required.join(", "))
        }
    );
}
