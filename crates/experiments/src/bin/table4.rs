//! Regenerates Table 4: geometric mean of 2D SpMV speedups per
//! reordering and machine.

use experiments::cli::parse_args;
use experiments::fmt::render_table;
use experiments::sweep::{speedup_geomean, sweep_corpus, SweepConfig, ORDERINGS};
use spfeatures::geometric_mean;
use spmv::KernelKind;

fn main() {
    let opts = parse_args();
    let machines = opts.machines();
    let specs = corpus::standard_corpus(opts.size);
    let cfg = SweepConfig::for_size(opts.size);
    eprintln!("sweeping {} matrices ...", specs.len());
    let sweeps = sweep_corpus(&specs, &machines, &cfg, true);

    let mut header: Vec<String> = vec!["2D".to_string()];
    header.extend(ORDERINGS[1..].iter().map(|s| s.to_string()));
    header.push("Mean".to_string());
    let mut rows = Vec::new();
    let mut col_values: Vec<Vec<f64>> = vec![Vec::new(); ORDERINGS.len() - 1];
    for (mi, m) in machines.iter().enumerate() {
        let mut row = vec![m.name.clone()];
        let mut vals = Vec::new();
        for o in 1..ORDERINGS.len() {
            let g = speedup_geomean(&sweeps, o, mi, KernelKind::TwoD).unwrap_or(f64::NAN);
            col_values[o - 1].push(g);
            vals.push(g);
            row.push(format!("{g:.3}"));
        }
        row.push(format!("{:.3}", geometric_mean(&vals).unwrap_or(f64::NAN)));
        rows.push(row);
    }
    let mut mean_row = vec!["Mean".to_string()];
    let mut all = Vec::new();
    for col in &col_values {
        let g = geometric_mean(col).unwrap_or(f64::NAN);
        all.push(g);
        mean_row.push(format!("{g:.3}"));
    }
    mean_row.push(format!("{:.3}", geometric_mean(&all).unwrap_or(f64::NAN)));
    rows.push(mean_row);

    println!(
        "Table 4: geometric mean of 2D SpMV speedups over the original order ({} matrices).\n",
        specs.len()
    );
    println!("{}", render_table(&header, &rows));
}
