//! Regenerates Table 2: the hardware used in the experiments (here: the
//! machine models encoded in `archsim`).

use experiments::fmt::render_table;

fn main() {
    let machines = archsim::machines();
    let header: Vec<String> = [
        "",
        "CPUs",
        "Instr. set",
        "Microarch.",
        "Sockets",
        "Cores",
        "Freq [GHz]",
        "L1D/core [KiB]",
        "L2/core [KiB]",
        "L3/socket [MiB]",
        "BW [GB/s]",
        "Threads",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let rows: Vec<Vec<String>> = machines
        .iter()
        .map(|m| {
            vec![
                m.name.clone(),
                m.cpu.clone(),
                m.isa.clone(),
                m.microarch.clone(),
                m.sockets.to_string(),
                format!("{}x{}", m.sockets, m.cores_per_socket),
                format!("{:.1}", m.freq_ghz),
                m.l1d_kib.to_string(),
                m.l2_kib.to_string(),
                m.l3_mib_per_socket.to_string(),
                format!("{:.1}", m.mem_bw_gbs),
                m.threads.to_string(),
            ]
        })
        .collect();
    println!("Table 2: Hardware models used in the simulated experiments.\n");
    println!("{}", render_table(&header, &rows));
}
