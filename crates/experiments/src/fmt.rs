//! Plain-text table and box-plot rendering for the experiment output.

use spfeatures::BoxStats;

/// Render a table with a header row; columns are right-aligned to the
/// widest cell.
pub fn render_table(header: &[String], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(ncols) {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (c, cell) in cells.iter().enumerate() {
            if c > 0 {
                line.push_str("  ");
            }
            if c == 0 {
                line.push_str(&format!("{:<width$}", cell, width = widths[c]));
            } else {
                line.push_str(&format!("{:>width$}", cell, width = widths[c]));
            }
        }
        line
    };
    out.push_str(&fmt_row(header, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Render a horizontal ASCII box plot for a set of named samples on a
/// log scale (the paper's speedup figures are log-scaled).
///
/// Each line shows `min [q1 |median| q3] max` positions over the given
/// range.
pub fn render_boxplot(entries: &[(String, BoxStats)], lo: f64, hi: f64, width: usize) -> String {
    let lo = lo.max(1e-6);
    let to_col = |v: f64| -> usize {
        let v = v.clamp(lo, hi);
        let frac = (v.ln() - lo.ln()) / (hi.ln() - lo.ln());
        ((frac * (width - 1) as f64).round() as usize).min(width - 1)
    };
    let name_w = entries.iter().map(|(n, _)| n.len()).max().unwrap_or(4);
    let mut out = String::new();
    for (name, b) in entries {
        let mut line: Vec<char> = vec![' '; width];
        let (cmin, cq1, cmed, cq3, cmax) = (
            to_col(b.min),
            to_col(b.q1),
            to_col(b.median),
            to_col(b.q3),
            to_col(b.max),
        );
        for c in cmin..=cmax {
            line[c] = '-';
        }
        for c in cq1..=cq3 {
            line[c] = '=';
        }
        line[cmin] = '|';
        line[cmax] = '|';
        line[cmed] = '#';
        out.push_str(&format!(
            "{:<name_w$} {}  med={:.2} q=[{:.2},{:.2}]\n",
            name,
            line.iter().collect::<String>(),
            b.median,
            b.q1,
            b.q3,
        ));
    }
    // Axis: marks at lo, 1.0 and hi.
    let mut axis: Vec<char> = vec![' '; width];
    axis[to_col(lo)] = '+';
    if lo < 1.0 && 1.0 < hi {
        axis[to_col(1.0)] = '1';
    }
    axis[to_col(hi)] = '+';
    out.push_str(&format!(
        "{:<name_w$} {}  (log scale {:.2} .. {:.2})\n",
        "",
        axis.iter().collect::<String>(),
        lo,
        hi
    ));
    out
}

/// Format seconds in the mixed style of Table 5 (3 significant-ish
/// digits, switching to integer display for large values).
pub fn fmt_seconds(s: f64) -> String {
    if s >= 100.0 {
        format!("{:.0}", s)
    } else if s >= 1.0 {
        format!("{:.1}", s)
    } else if s >= 0.001 {
        format!("{:.3}", s)
    } else {
        format!("{:.2e}", s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["Name".into(), "X".into()],
            &[
                vec!["a".into(), "1.5".into()],
                vec!["longer".into(), "10.25".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("longer"));
        assert!(lines[3].ends_with("10.25"));
    }

    #[test]
    fn boxplot_renders_markers() {
        let b = BoxStats {
            min: 0.5,
            q1: 0.8,
            median: 1.0,
            q3: 1.3,
            max: 2.0,
        };
        let s = render_boxplot(&[("GP".into(), b)], 0.25, 4.0, 40);
        assert!(s.contains('#'));
        assert!(s.contains('='));
        assert!(s.contains("med=1.00"));
        assert!(s.lines().count() == 2);
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_seconds(210.0), "210");
        assert_eq!(fmt_seconds(15.4), "15.4");
        assert_eq!(fmt_seconds(0.013), "0.013");
        assert_eq!(fmt_seconds(0.00001), "1.00e-5");
    }
}
