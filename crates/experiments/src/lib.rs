#![allow(clippy::needless_range_loop)]

//! Experiment harness: regenerates every table and figure of the
//! paper's evaluation section.
//!
//! Each binary under `src/bin/` reproduces one artefact:
//!
//! | Binary | Paper artefact |
//! |--------|----------------|
//! | `table2` | Table 2 — hardware list |
//! | `fig1` | Fig. 1 — spy plots + speedups for three matrices |
//! | `fig2` | Fig. 2 — 1D speedup box plots (all orderings × machines) |
//! | `table3` | Table 3 — geometric-mean 1D speedups |
//! | `fig3` | Fig. 3 — 2D speedup box plots |
//! | `table4` | Table 4 — geometric-mean 2D speedups |
//! | `fig4` | Fig. 4 — six-class in-depth analysis |
//! | `fig5` | Fig. 5 — performance profiles |
//! | `fig6` | Fig. 6 — Cholesky fill ratios |
//! | `table5` | Table 5 — reordering overhead |
//! | `reference_dense` | §4.2 — dense tall-skinny bandwidth reference |
//!
//! All binaries accept `--size small|medium|large` (default `small`) to
//! pick the corpus scale, so a full regeneration can run in seconds or
//! at a scale closer to the paper's.

pub mod cli;
pub mod fmt;
pub mod sweep;
