//! Minimal command-line handling shared by the experiment binaries.

use corpus::CorpusSize;

/// Options common to all experiment binaries.
#[derive(Debug, Clone)]
pub struct Options {
    /// Corpus scale.
    pub size: CorpusSize,
    /// Restrict to machines whose name contains one of these strings
    /// (empty = all eight).
    pub machines: Vec<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            size: CorpusSize::Small,
            machines: Vec::new(),
        }
    }
}

/// Parse `--size small|medium|large` and `--machine <name>` (repeatable)
/// from the process arguments. Unknown arguments abort with usage help.
pub fn parse_args() -> Options {
    parse_from(std::env::args().skip(1))
}

/// Parse from an explicit iterator (testable).
pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Options {
    let mut opts = Options::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--size" => {
                let v = it.next().unwrap_or_default();
                opts.size = match v.as_str() {
                    "small" => CorpusSize::Small,
                    "medium" => CorpusSize::Medium,
                    "large" => CorpusSize::Large,
                    other => {
                        eprintln!("unknown --size '{other}' (small|medium|large)");
                        std::process::exit(2);
                    }
                };
            }
            "--machine" => {
                let v = it.next().unwrap_or_default();
                if v.is_empty() {
                    eprintln!("--machine requires a name");
                    std::process::exit(2);
                }
                opts.machines.push(v);
            }
            "--help" | "-h" => {
                println!("usage: <bin> [--size small|medium|large] [--machine NAME]...");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    opts
}

impl Options {
    /// The machines selected by the options.
    pub fn machines(&self) -> Vec<archsim::Machine> {
        let all = archsim::machines();
        if self.machines.is_empty() {
            return all;
        }
        all.into_iter()
            .filter(|m| self.machines.iter().any(|f| m.name.contains(f.as_str())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_small_all_machines() {
        let o = parse_from(Vec::<String>::new());
        assert_eq!(o.size, CorpusSize::Small);
        assert_eq!(o.machines().len(), 8);
    }

    #[test]
    fn parses_size_and_machines() {
        let o = parse_from(
            ["--size", "medium", "--machine", "Milan", "--machine", "TX2"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(o.size, CorpusSize::Medium);
        let ms = o.machines();
        let names: Vec<_> = ms.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["Milan A", "Milan B", "TX2"]);
    }
}
