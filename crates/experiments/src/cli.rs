//! Minimal command-line handling shared by the experiment binaries.

use corpus::CorpusSize;

/// Options common to all experiment binaries.
#[derive(Debug, Clone)]
pub struct Options {
    /// Corpus scale.
    pub size: CorpusSize,
    /// Restrict to machines whose name contains one of these strings
    /// (empty = all eight).
    pub machines: Vec<String>,
    /// Lanes of the shared sweep engine's reordering team
    /// (`--reorder-threads`, default 1 = sequential orderings).
    pub reorder_threads: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            size: CorpusSize::Small,
            machines: Vec::new(),
            reorder_threads: 1,
        }
    }
}

/// Parse `--size small|medium|large`, `--machine <name>` (repeatable)
/// and `--reorder-threads N` from the process arguments. Unknown
/// arguments abort with usage help.
///
/// `--reorder-threads` is forwarded to
/// [`crate::sweep::set_reorder_threads`] so the shared sweep engine's
/// reordering team is sized before its lazy construction — every
/// binary that parses its arguments through here gets the flag.
pub fn parse_args() -> Options {
    let opts = parse_from(std::env::args().skip(1));
    crate::sweep::set_reorder_threads(opts.reorder_threads);
    opts
}

/// Parse from an explicit iterator (testable).
pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Options {
    let mut opts = Options::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--size" => {
                let v = it.next().unwrap_or_default();
                opts.size = match v.as_str() {
                    "small" => CorpusSize::Small,
                    "medium" => CorpusSize::Medium,
                    "large" => CorpusSize::Large,
                    other => {
                        eprintln!("unknown --size '{other}' (small|medium|large)");
                        std::process::exit(2);
                    }
                };
            }
            "--machine" => {
                let v = it.next().unwrap_or_default();
                if v.is_empty() {
                    eprintln!("--machine requires a name");
                    std::process::exit(2);
                }
                opts.machines.push(v);
            }
            "--reorder-threads" => {
                let v = it.next().unwrap_or_default();
                opts.reorder_threads = match v.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--reorder-threads: cannot parse '{v}' (want an integer >= 1)");
                        std::process::exit(2);
                    }
                };
            }
            "--help" | "-h" => {
                println!(
                    "usage: <bin> [--size small|medium|large] [--machine NAME]... \
                     [--reorder-threads N]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    opts
}

impl Options {
    /// The machines selected by the options.
    pub fn machines(&self) -> Vec<archsim::Machine> {
        let all = archsim::machines();
        if self.machines.is_empty() {
            return all;
        }
        all.into_iter()
            .filter(|m| self.machines.iter().any(|f| m.name.contains(f.as_str())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_small_all_machines() {
        let o = parse_from(Vec::<String>::new());
        assert_eq!(o.size, CorpusSize::Small);
        assert_eq!(o.machines().len(), 8);
        assert_eq!(o.reorder_threads, 1);
    }

    #[test]
    fn parses_reorder_threads() {
        let o = parse_from(["--reorder-threads", "4"].iter().map(|s| s.to_string()));
        assert_eq!(o.reorder_threads, 4);
    }

    #[test]
    fn parses_size_and_machines() {
        let o = parse_from(
            ["--size", "medium", "--machine", "Milan", "--machine", "TX2"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(o.size, CorpusSize::Medium);
        let ms = o.machines();
        let names: Vec<_> = ms.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["Milan A", "Milan B", "TX2"]);
    }
}
