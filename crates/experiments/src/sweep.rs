//! The shared corpus sweep: reorder every matrix with every algorithm,
//! simulate both SpMV kernels on every machine, and aggregate speedups.
//!
//! All orderings are obtained through the shared [`engine`] instance
//! ([`sweep_engine`]), so repeated (matrix, algorithm) pairs — within a
//! sweep, across the figure/table binaries of one process, or across
//! processes when disk persistence is enabled — are computed exactly
//! once and every later consumer gets the cached permutation (the
//! paper's §4.7 amortisation argument, operationalised).

use archsim::{simulate_spmv_1d_opt, simulate_spmv_2d_opt, Machine, SimOptions};
use corpus::{CorpusSize, MatrixSpec};
use engine::{AlgoSpec, Engine, EngineConfig, MatrixHandle};
use spfeatures::{geometric_mean, matrix_features, quartiles, BoxStats, MatrixFeatures};
use spmv::KernelKind;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Ordering names in the paper's column order, with the baseline first.
pub const ORDERINGS: [&str; 7] = ["Original", "RCM", "AMD", "ND", "GP", "HP", "Gray"];

/// Partitioner arity configuration.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Parts for GP. The paper matches the core count per machine
    /// (16–128); we compute one GP ordering at a fixed arity and reuse
    /// it across machines (see DESIGN.md).
    pub gp_parts: usize,
    /// Parts for HP (the paper fixes 128).
    pub hp_parts: usize,
    /// Block count for the off-diagonal-nnz feature.
    pub feature_blocks: usize,
    /// Cache scale for the machine model (see `archsim::SimOptions`):
    /// set to (corpus matrix size) / (paper median matrix size) so the
    /// footprint-to-cache ratios match the real study.
    pub cache_scale: f64,
}

impl SweepConfig {
    /// Scale-appropriate partitioner arities.
    pub fn for_size(size: CorpusSize) -> SweepConfig {
        match size {
            CorpusSize::Small => SweepConfig {
                gp_parts: 16,
                hp_parts: 32,
                feature_blocks: 16,
                cache_scale: 1.0 / 32.0,
            },
            CorpusSize::Medium => SweepConfig {
                gp_parts: 64,
                hp_parts: 64,
                feature_blocks: 64,
                cache_scale: 1.0 / 16.0,
            },
            CorpusSize::Large => SweepConfig {
                gp_parts: 64,
                hp_parts: 128,
                feature_blocks: 64,
                cache_scale: 1.0 / 8.0,
            },
        }
    }
}

/// One ordering's outcome on one matrix.
#[derive(Debug, Clone)]
pub struct OrderingRun {
    /// Ordering name ("Original", "RCM", ...).
    pub ordering: String,
    /// Time to compute the reordering, seconds (zero for Original).
    pub reorder_seconds: f64,
    /// §3.2 features of the reordered matrix.
    pub features: MatrixFeatures,
    /// Simulated per-machine results: `(gflops_1d, imbalance_1d,
    /// gflops_2d)` indexed like the machine list of the sweep.
    pub per_machine: Vec<MachineCell>,
}

/// Simulated result on one machine.
#[derive(Debug, Clone, Copy)]
pub struct MachineCell {
    /// 1D kernel performance, Gflop/s.
    pub gflops_1d: f64,
    /// 1D load imbalance factor.
    pub imbalance_1d: f64,
    /// 2D kernel performance, Gflop/s.
    pub gflops_2d: f64,
    /// Modelled 1D time, seconds.
    pub seconds_1d: f64,
    /// Modelled 2D time, seconds.
    pub seconds_2d: f64,
}

impl MachineCell {
    /// Modelled Gflop/s for a kernel selected by the shared enum. The
    /// machine model simulates the 1D and 2D algorithms; the merge
    /// kernel — whose simplified form *is* the 2D algorithm — maps to
    /// the 2D model.
    pub fn gflops(&self, kernel: KernelKind) -> f64 {
        match kernel {
            KernelKind::OneD => self.gflops_1d,
            KernelKind::TwoD | KernelKind::Merge => self.gflops_2d,
        }
    }

    /// Modelled seconds for a kernel (same mapping as
    /// [`MachineCell::gflops`]).
    pub fn seconds(&self, kernel: KernelKind) -> f64 {
        match kernel {
            KernelKind::OneD => self.seconds_1d,
            KernelKind::TwoD | KernelKind::Merge => self.seconds_2d,
        }
    }
}

/// All orderings on one corpus matrix.
#[derive(Debug, Clone)]
pub struct MatrixSweep {
    /// Matrix name.
    pub name: String,
    /// Family group.
    pub group: String,
    /// Rows.
    pub nrows: usize,
    /// Nonzeros.
    pub nnz: usize,
    /// One entry per ordering, in [`ORDERINGS`] order.
    pub runs: Vec<OrderingRun>,
}

impl MatrixSweep {
    /// Speedup of ordering `o` over Original on machine `m` for the
    /// given kernel.
    pub fn speedup(&self, o: usize, m: usize, kernel: KernelKind) -> f64 {
        self.runs[o].per_machine[m].gflops(kernel) / self.runs[0].per_machine[m].gflops(kernel)
    }

    /// Speedup of ordering `o` over Original on machine `m`.
    pub fn speedup_1d(&self, o: usize, m: usize) -> f64 {
        self.speedup(o, m, KernelKind::OneD)
    }

    /// 2D speedup of ordering `o` over Original on machine `m`.
    pub fn speedup_2d(&self, o: usize, m: usize) -> f64 {
        self.speedup(o, m, KernelKind::TwoD)
    }
}

/// Lanes for the shared engine's reordering team, consulted once when
/// [`sweep_engine`] first initialises (0 = "unset", fall back to the
/// engine default of 1).
static REORDER_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Size the shared engine's reordering team (the `--reorder-threads`
/// flag). Must be called before the first [`sweep_engine`] use; later
/// calls have no effect because the engine is already running.
pub fn set_reorder_threads(n: usize) {
    REORDER_THREADS.store(n, Ordering::Relaxed);
}

/// The process-wide reordering engine every sweep goes through.
///
/// One instance per process means every figure/table binary that
/// sweeps the same corpus twice (or overlapping corpora) computes each
/// (matrix, algorithm) ordering exactly once. Set
/// `REORDER_CACHE_DIR=<dir>` to also persist permutations across
/// processes (e.g. `results/cache/` for a full artifact regeneration).
pub fn sweep_engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        let mut config = EngineConfig::default();
        let reorder_threads = REORDER_THREADS.load(Ordering::Relaxed);
        if reorder_threads > 0 {
            config.reorder_threads = reorder_threads;
        }
        if let Ok(dir) = std::env::var("REORDER_CACHE_DIR") {
            if !dir.is_empty() {
                config.persist_dir = Some(dir.into());
            }
        }
        Engine::new(config)
    })
}

/// Report the shared engine's cache statistics (call at the end of a
/// sweep so the amortisation win is visible in every table/figure run).
pub fn log_engine_stats(context: &str) {
    eprintln!("  engine stats [{context}]: {}", sweep_engine().stats());
}

/// Compute all seven (matrix, ordering) pairs for one matrix through
/// the shared engine: the reordered matrices plus the one-time
/// reordering costs.
///
/// The returned `f64` is the wall-clock cost of *computing* the
/// ordering (Table 5's quantity). On a cache hit it is the cost the
/// original computation paid, not the (near-zero) cost this call paid —
/// callers reporting amortisation should consult [`sweep_engine`]'s
/// stats.
///
/// Matrices come back as `Arc`s: the Original entry shares `a`'s
/// storage outright (no payload clone for the identity ordering), and
/// reordered matrices are shareable with downstream plan caches.
pub fn apply_all_orderings(
    a: &Arc<sparsemat::CsrMatrix>,
    cfg: &SweepConfig,
) -> Vec<(String, f64, Arc<sparsemat::CsrMatrix>)> {
    let engine = sweep_engine();
    let handle = MatrixHandle::new(Arc::clone(a));
    let mut specs = vec![AlgoSpec::Original];
    specs.extend(AlgoSpec::study_suite(cfg.gp_parts, cfg.hp_parts));
    let tickets = engine.submit_batch(specs.iter().map(|&s| (&handle, s)));
    specs
        .iter()
        .zip(tickets)
        .map(|(spec, ticket)| {
            let cached = ticket
                .wait()
                .unwrap_or_else(|e| panic!("{} failed: {e}", spec.name()));
            let b = if matches!(spec, AlgoSpec::Original) {
                // The identity ordering: share the input, don't copy it.
                Arc::clone(a)
            } else {
                // Apply on the engine's reorder team: parallel row copy
                // when `--reorder-threads` > 1, byte-identical output.
                Arc::new(
                    cached
                        .apply_on(a, team::Exec::Team(engine.reorder_team()))
                        .unwrap_or_else(|e| panic!("{} apply failed: {e}", spec.name())),
                )
            };
            (spec.name().to_string(), cached.compute_seconds, b)
        })
        .collect()
}

/// Sweep one matrix: reorder + simulate on all machines.
pub fn sweep_matrix(spec: &MatrixSpec, machines: &[Machine], cfg: &SweepConfig) -> MatrixSweep {
    let a = Arc::new(spec.build());
    let ordered = apply_all_orderings(&a, cfg);
    let runs = ordered
        .into_iter()
        .map(|(name, secs, b)| {
            let per_machine = machines
                .iter()
                .map(|m| {
                    let opts = SimOptions {
                        cache_scale: cfg.cache_scale,
                    };
                    let r1 = simulate_spmv_1d_opt(&b, m, &opts);
                    let r2 = simulate_spmv_2d_opt(&b, m, &opts);
                    MachineCell {
                        gflops_1d: r1.gflops,
                        imbalance_1d: r1.imbalance,
                        gflops_2d: r2.gflops,
                        seconds_1d: r1.seconds,
                        seconds_2d: r2.seconds,
                    }
                })
                .collect();
            OrderingRun {
                ordering: name,
                reorder_seconds: secs,
                features: matrix_features(&b, cfg.feature_blocks),
                per_machine,
            }
        })
        .collect();
    MatrixSweep {
        name: spec.name.clone(),
        group: spec.group.clone(),
        nrows: a.nrows(),
        nnz: a.nnz(),
        runs,
    }
}

/// Sweep a whole corpus, in parallel over matrices.
///
/// Matrices are claimed from a shared atomic counter by a scoped
/// thread per available core; the reordering work itself funnels
/// through [`sweep_engine`]'s worker pool, so duplicate (matrix,
/// algorithm) pairs across the corpus are computed once.
pub fn sweep_corpus(
    specs: &[MatrixSpec],
    machines: &[Machine],
    cfg: &SweepConfig,
    verbose: bool,
) -> Vec<MatrixSweep> {
    let threads = std::thread::available_parallelism()
        .map_or(4, |n| n.get())
        .min(specs.len().max(1));
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<MatrixSweep>>> =
        Mutex::new((0..specs.len()).map(|_| None).collect());
    // In verbose mode, tick a compact registry line (cache hits, queue
    // depth, reorder histograms) to stderr while the sweep runs.
    let reporter = verbose.then(|| {
        telemetry::Reporter::start_with(
            telemetry::Registry::global(),
            std::time::Duration::from_secs(5),
            std::io::stderr(),
        )
    });
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= specs.len() {
                    break;
                }
                let r = sweep_matrix(&specs[i], machines, cfg);
                if verbose {
                    eprintln!("  swept {} ({} rows, {} nnz)", r.name, r.nrows, r.nnz);
                }
                results.lock().unwrap()[i] = Some(r);
            });
        }
    });
    if let Some(reporter) = reporter {
        reporter.stop(); // emits a final line with the end-of-sweep state
    }
    if verbose {
        log_engine_stats("sweep_corpus");
    }
    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("every sweep index is claimed exactly once"))
        .collect()
}

/// Box statistics of the speedups of ordering `o` over all matrices on
/// machine `m` for the given kernel.
pub fn speedup_box(
    sweeps: &[MatrixSweep],
    o: usize,
    m: usize,
    kernel: KernelKind,
) -> Option<BoxStats> {
    let xs: Vec<f64> = sweeps.iter().map(|s| s.speedup(o, m, kernel)).collect();
    quartiles(&xs)
}

/// Geometric-mean speedup of ordering `o` on machine `m` (the Table 3/4
/// aggregation) for the given kernel.
pub fn speedup_geomean(
    sweeps: &[MatrixSweep],
    o: usize,
    m: usize,
    kernel: KernelKind,
) -> Option<f64> {
    let xs: Vec<f64> = sweeps.iter().map(|s| s.speedup(o, m, kernel)).collect();
    geometric_mean(&xs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::standard_corpus;

    fn tiny_machines() -> Vec<Machine> {
        archsim::machines()
            .into_iter()
            .filter(|m| m.name == "Rome" || m.name == "TX2")
            .collect()
    }

    #[test]
    fn sweep_one_matrix_produces_full_grid() {
        let specs = standard_corpus(CorpusSize::Small);
        let spec = specs
            .iter()
            .find(|s| s.name.contains("band_narrow"))
            .unwrap();
        let machines = tiny_machines();
        let cfg = SweepConfig::for_size(CorpusSize::Small);
        let s = sweep_matrix(spec, &machines, &cfg);
        assert_eq!(s.runs.len(), 7);
        let names: Vec<&str> = s.runs.iter().map(|r| r.ordering.as_str()).collect();
        assert_eq!(names, ORDERINGS.to_vec());
        for r in &s.runs {
            assert_eq!(r.per_machine.len(), 2);
            for c in &r.per_machine {
                assert!(c.gflops_1d > 0.0);
                assert!(c.gflops_2d > 0.0);
                assert!(c.imbalance_1d >= 1.0);
            }
        }
        // Original's speedup over itself is exactly 1.
        assert!((s.speedup_1d(0, 0) - 1.0).abs() < 1e-12);
        assert!((s.speedup_2d(0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scrambled_band_recovers_with_rcm() {
        // On a scrambled banded matrix, RCM should deliver a clear 1D
        // speedup in the model (this is the paper's headline mechanism).
        let specs = standard_corpus(CorpusSize::Small);
        let spec = specs
            .iter()
            .find(|s| s.name.contains("band_scrambled"))
            .unwrap();
        let machines = tiny_machines();
        let cfg = SweepConfig::for_size(CorpusSize::Small);
        let s = sweep_matrix(spec, &machines, &cfg);
        let rcm = ORDERINGS.iter().position(|&n| n == "RCM").unwrap();
        for m in 0..machines.len() {
            assert!(
                s.speedup_1d(rcm, m) > 1.1,
                "RCM speedup on {} is only {}",
                machines[m].name,
                s.speedup_1d(rcm, m)
            );
        }
        // RCM must slash the profile (the band is recoverable up to the
        // stray perturbation edges, which inflate the max-type bandwidth
        // metric but not the sum-type profile).
        assert!(s.runs[rcm].features.profile * 2 < s.runs[0].features.profile);
    }

    #[test]
    fn repeated_sweep_hits_cache() {
        // The amortisation acceptance criterion: sweeping the same
        // matrix twice must serve the second pass from the engine cache
        // (at least one hit per duplicated (matrix, algorithm) pair).
        // The engine is process-global, so assert on stat *deltas*;
        // concurrent tests can only add hits, never remove cache
        // entries (default capacity far exceeds the test corpus).
        let specs = standard_corpus(CorpusSize::Small);
        let spec = specs.iter().find(|s| s.name.contains("mesh2d")).unwrap();
        let machines = tiny_machines();
        let cfg = SweepConfig::for_size(CorpusSize::Small);
        let before = sweep_engine().stats();
        let s1 = sweep_matrix(spec, &machines, &cfg);
        let s2 = sweep_matrix(spec, &machines, &cfg);
        let after = sweep_engine().stats();
        let amortised = (after.cache.hits + after.coalesced + after.cache.disk_hits)
            - (before.cache.hits + before.coalesced + before.cache.disk_hits);
        assert!(
            amortised >= ORDERINGS.len() as u64,
            "second sweep should be served from cache: {amortised} amortised, stats {after}"
        );
        // Served-from-cache results are identical to computed ones.
        for (r1, r2) in s1.runs.iter().zip(s2.runs.iter()) {
            assert_eq!(r1.ordering, r2.ordering);
            assert_eq!(r1.reorder_seconds, r2.reorder_seconds);
            assert_eq!(r1.features.bandwidth, r2.features.bandwidth);
        }
    }

    #[test]
    fn aggregations_work() {
        let specs: Vec<_> = standard_corpus(CorpusSize::Small)
            .into_iter()
            .filter(|s| s.name.contains("band") || s.name.contains("mesh2d"))
            .take(3)
            .collect();
        let machines = tiny_machines();
        let cfg = SweepConfig::for_size(CorpusSize::Small);
        let sweeps = sweep_corpus(&specs, &machines, &cfg, false);
        assert_eq!(sweeps.len(), 3);
        let b = speedup_box(&sweeps, 1, 0, KernelKind::OneD).unwrap();
        assert!(b.min <= b.median && b.median <= b.max);
        let g = speedup_geomean(&sweeps, 1, 0, KernelKind::OneD).unwrap();
        assert!(g > 0.0);
        // The merge kernel maps onto the 2D machine model.
        let g2 = speedup_geomean(&sweeps, 1, 0, KernelKind::TwoD).unwrap();
        let gm = speedup_geomean(&sweeps, 1, 0, KernelKind::Merge).unwrap();
        assert_eq!(g2, gm);
    }
}
