//! End-to-end tests for the serving tier: numeric answer delivery,
//! load-shedding, deadline cancellation, routing, and shutdown.

use engine::{AlgoSpec, MatrixHandle};
use servetier::{ServeTier, ShedReason, SpmvRequest, TenantSpec, TierConfig, TierError};
use spmv::KernelKind;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tier(shards: usize, queue_capacity: usize) -> ServeTier {
    ServeTier::new(TierConfig {
        shards,
        queue_capacity,
        tenants: vec![TenantSpec::new("t0", 2), TenantSpec::new("t1", 1)],
        dispatchers_per_shard: 1,
        spmv_threads: 2,
        registry: Some(telemetry::Registry::new_arc()),
        ..TierConfig::default()
    })
}

fn request(matrix: &MatrixHandle, algo: AlgoSpec, kernel: KernelKind) -> SpmvRequest {
    let x: Vec<f64> = (0..matrix.matrix().ncols())
        .map(|i| 1.0 + (i % 7) as f64 * 0.5)
        .collect();
    SpmvRequest {
        tenant: "t0".into(),
        matrix: matrix.clone(),
        algo,
        kernel,
        x: Arc::new(x),
        priority: 0,
        deadline: None,
    }
}

fn assert_close(got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            (g - w).abs() <= 1e-9 * (1.0 + w.abs()),
            "row {i}: got {g}, want {w}"
        );
    }
}

#[test]
fn answers_are_correct_in_original_index_space() {
    // Every algorithm (symmetric and the row-only Gray) × every
    // kernel, on a 4-shard tier: the caller must never observe the
    // reordering.
    let tier = tier(4, 64);
    let matrix = MatrixHandle::from_matrix(corpus::scramble(&corpus::mesh2d(14, 14), 5));
    for algo in [
        AlgoSpec::Original,
        AlgoSpec::Rcm,
        AlgoSpec::Amd,
        AlgoSpec::Gray,
        AlgoSpec::Gp { parts: 4 },
    ] {
        for kernel in KernelKind::all() {
            let req = request(&matrix, algo, kernel);
            let want = matrix.matrix().spmv_dense(&req.x);
            let response = tier
                .serve(req)
                .unwrap_or_else(|e| panic!("{}/{} failed: {e}", algo.name(), kernel.name()));
            assert_close(&response.y, &want);
            assert_eq!(response.shard, tier.route(&matrix));
        }
    }
    let stats = tier.stats();
    assert_eq!(stats.served(), 15);
    assert_eq!(stats.shed(), 0);
}

#[test]
fn distinct_matrices_spread_over_shards_deterministically() {
    let tier = tier(4, 64);
    let matrices: Vec<MatrixHandle> = (0..32u64)
        .map(|i| {
            MatrixHandle::from_matrix(corpus::scramble(
                &corpus::mesh2d(6 + (i % 5) as usize, 7),
                i,
            ))
        })
        .collect();
    let mut used = [false; 4];
    for m in &matrices {
        let s = tier.route(m);
        assert_eq!(s, tier.route(m), "routing must be deterministic");
        used[s] = true;
    }
    assert!(
        used.iter().filter(|&&u| u).count() >= 2,
        "32 matrices landed on one shard: {used:?}"
    );
}

/// Lineage-affine routing: a mutated matrix lands on the shard that
/// owns its ancestor, so the delta splice path finds the parent's
/// cached component ranges — and the served answer is still exact.
#[test]
fn delta_descendants_route_to_the_parents_shard_and_splice() {
    use sparsemat::EdgeOp;
    let tier = tier(4, 64);
    for seed in 0..8u64 {
        let base = corpus::scramble(&corpus::mesh2d(6 + (seed % 4) as usize, 7), seed);
        let parent = MatrixHandle::from_matrix(base.clone());
        let mut mutated = base;
        let (r, c) = mutated
            .iter()
            .find(|&(i, j, _)| i != j)
            .map(|(i, j, _)| (i, j))
            .expect("mesh has off-diagonal entries");
        mutated
            .apply_delta(&[
                EdgeOp::Remove { row: r, col: c },
                EdgeOp::Remove { row: c, col: r },
            ])
            .unwrap();
        let child = MatrixHandle::from_matrix(mutated);
        assert_ne!(parent.content_hash(), child.content_hash());
        assert_eq!(
            tier.route(&parent),
            tier.route(&child),
            "seed {seed}: delta child must stay on its parent's shard"
        );
    }

    // End-to-end: serve the parent, mutate, serve the child — the
    // child's ordering is spliced from the parent's cached ranges and
    // the numeric answer is still exact.
    let base = corpus::scramble(&corpus::mesh2d(12, 12), 3);
    let parent = MatrixHandle::from_matrix(base.clone());
    tier.serve(request(&parent, AlgoSpec::Rcm, KernelKind::Merge))
        .unwrap();
    let mut mutated = base;
    let (r, c) = mutated
        .iter()
        .find(|&(i, j, _)| i != j)
        .map(|(i, j, _)| (i, j))
        .unwrap();
    mutated
        .apply_delta(&[
            EdgeOp::Remove { row: r, col: c },
            EdgeOp::Remove { row: c, col: r },
        ])
        .unwrap();
    let child = MatrixHandle::from_matrix(mutated);
    let req = request(&child, AlgoSpec::Rcm, KernelKind::Merge);
    let want = child.matrix().spmv_dense(&req.x);
    let response = tier.serve(req).unwrap();
    assert_close(&response.y, &want);
    assert_eq!(response.shard, tier.route(&parent));
    let stats = tier.engine_for(&child).stats();
    assert_eq!(stats.delta_hits, 1, "child must probe the parent entry");
    assert_eq!(stats.delta_splices, 1, "child must splice, not recompute");
}

#[test]
fn full_queue_sheds_with_reason() {
    // One dispatcher, capacity 2, and a stream of distinct matrices
    // (each a fresh reorder): the backlog must overflow into sheds.
    let tier = tier(1, 2);
    let tickets: Vec<_> = (0..16u64)
        .map(|i| {
            let m = MatrixHandle::from_matrix(corpus::scramble(
                &corpus::mesh2d(12, 12 + i as usize),
                i,
            ));
            tier.submit(request(&m, AlgoSpec::Rcm, KernelKind::OneD))
        })
        .collect();
    let mut served = 0usize;
    let mut shed = 0usize;
    for t in tickets {
        match t.wait() {
            Ok(_) => served += 1,
            Err(TierError::Shed(ShedReason::QueueFull)) => shed += 1,
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(shed > 0, "16 instant submissions into capacity 2 must shed");
    assert_eq!(served + shed, 16);
    let stats = tier.stats();
    assert_eq!(stats.shards[0].shed_queue_full, shed as u64);
    assert_eq!(stats.served(), served as u64);
}

#[test]
fn expired_deadline_is_shed_without_reorder_work() {
    let tier = tier(1, 16);
    let matrix = MatrixHandle::from_matrix(corpus::scramble(&corpus::mesh2d(12, 12), 1));
    let mut req = request(&matrix, AlgoSpec::Rcm, KernelKind::OneD);
    req.deadline = Some(Instant::now() - Duration::from_millis(1));
    match tier.serve(req) {
        Err(TierError::Shed(ShedReason::Expired)) => {}
        other => panic!("expected expired shed, got {other:?}"),
    }
    let stats = tier.stats();
    assert_eq!(stats.shards[0].shed_expired, 1);
    assert_eq!(
        stats.shards[0].engine.jobs_executed, 0,
        "an expired request must never reach the reorder pool"
    );
    assert_eq!(stats.shards[0].engine.submitted, 0);
}

#[test]
fn unknown_tenant_is_rejected() {
    let tier = tier(1, 16);
    let matrix = MatrixHandle::from_matrix(corpus::mesh2d(10, 10));
    let mut req = request(&matrix, AlgoSpec::Original, KernelKind::OneD);
    req.tenant = "nobody".into();
    match tier.serve(req) {
        Err(TierError::Shed(ShedReason::UnknownTenant)) => {}
        other => panic!("expected unknown-tenant shed, got {other:?}"),
    }
    assert_eq!(tier.stats().shed_unknown_tenant, 1);
}

#[test]
fn wrong_x_length_is_invalid() {
    let tier = tier(1, 16);
    let matrix = MatrixHandle::from_matrix(corpus::mesh2d(10, 10));
    let mut req = request(&matrix, AlgoSpec::Original, KernelKind::OneD);
    req.x = Arc::new(vec![1.0; 3]);
    assert!(matches!(tier.serve(req), Err(TierError::InvalidRequest(_))));
}

#[test]
fn repeat_requests_hit_the_shard_caches() {
    let tier = tier(2, 64);
    let matrix = MatrixHandle::from_matrix(corpus::scramble(&corpus::mesh2d(14, 14), 2));
    let req = request(&matrix, AlgoSpec::Rcm, KernelKind::Merge);
    let want = matrix.matrix().spmv_dense(&req.x);
    for _ in 0..6 {
        let response = tier.serve(req.clone()).unwrap();
        assert_close(&response.y, &want);
    }
    let shard = tier.route(&matrix);
    let engine = &tier.stats().shards[shard].engine;
    assert_eq!(engine.jobs_executed, 1, "one reorder serves all repeats");
    assert_eq!(engine.cache.hits, 5);
    // The reordered matrix is planned once, too.
    assert_eq!(engine.plans.misses, 1);
    assert_eq!(engine.plans.hits, 5);
}

#[test]
fn per_tenant_latency_series_appear_in_the_registry() {
    let tier = tier(1, 16);
    let matrix = MatrixHandle::from_matrix(corpus::mesh2d(10, 10));
    tier.serve(request(&matrix, AlgoSpec::Rcm, KernelKind::OneD))
        .unwrap();
    let mut req = request(&matrix, AlgoSpec::Rcm, KernelKind::OneD);
    req.tenant = "t1".into();
    tier.serve(req).unwrap();
    let snap = tier.registry().snapshot();
    let h0 = snap
        .histogram_labeled("tier.request", &[("tenant", "t0")])
        .expect("t0 latency series");
    let h1 = snap
        .histogram_labeled("tier.request", &[("tenant", "t1")])
        .expect("t1 latency series");
    assert_eq!(h0.count, 1);
    assert_eq!(h1.count, 1);
}

#[test]
fn dropping_the_tier_resolves_every_outstanding_ticket() {
    let tier = tier(1, 64);
    let tickets: Vec<_> = (0..24u64)
        .map(|i| {
            let m = MatrixHandle::from_matrix(corpus::scramble(
                &corpus::mesh2d(10, 10 + i as usize),
                i,
            ));
            tier.submit(request(&m, AlgoSpec::Rcm, KernelKind::OneD))
        })
        .collect();
    drop(tier);
    // Every ticket resolves — served, or shed on shutdown — without
    // hanging.
    for t in tickets {
        match t.wait() {
            Ok(_) | Err(TierError::Shed(ShedReason::ShuttingDown)) => {}
            Err(other) => panic!("unexpected error at shutdown: {other}"),
        }
    }
}

#[test]
fn sampled_request_records_the_serving_stages() {
    use telemetry::trace::EventKind;
    let recorder = telemetry::FlightRecorder::new(8192);
    let tier = ServeTier::new(TierConfig {
        shards: 2,
        queue_capacity: 16,
        tenants: vec![TenantSpec::new("t0", 1)],
        spmv_threads: 2,
        registry: Some(telemetry::Registry::new_arc()),
        recorder: Some(Arc::clone(&recorder)),
        trace_sample_every: 1,
        ..TierConfig::default()
    });
    let matrix = MatrixHandle::from_matrix(corpus::scramble(&corpus::mesh2d(12, 12), 3));
    let ticket = tier.submit(request(&matrix, AlgoSpec::Rcm, KernelKind::OneD));
    let request_id = ticket.request_id();
    ticket.wait().unwrap();
    let trace_id = tier.trace_id_for(request_id).expect("request sampled");
    let snap = recorder.snapshot().filter_trace(trace_id);
    let names: Vec<&str> = snap
        .events()
        .filter(|e| e.kind == EventKind::Begin)
        .map(|e| e.name)
        .collect();
    for stage in [
        "tier.request",
        "admission.wait",
        "tier.execute",
        "policy.decide",
        "engine.request",
        "engine.reorder",
        "reorder.permute",
        "engine.plan",
        "serve.spmv",
        "answer.unpermute",
    ] {
        assert!(names.contains(&stage), "missing {stage} in {names:?}");
    }
    // The engine's request span parents under the tier's execute span.
    let execute_id = snap
        .events()
        .find(|e| e.name == "tier.execute" && e.kind == EventKind::Begin)
        .unwrap()
        .span_id;
    let engine_request = snap
        .events()
        .find(|e| e.name == "engine.request" && e.kind == EventKind::Begin)
        .unwrap();
    assert_eq!(engine_request.parent_id, execute_id);
    // And both renderings resolve by request ID.
    assert!(tier
        .trace_summary(request_id)
        .unwrap()
        .contains("serve.spmv"));
    assert!(tier
        .trace_chrome_json(request_id)
        .unwrap()
        .contains("\"answer.unpermute\""));
}

#[test]
fn adaptive_policy_skips_reordering_for_one_shot_traffic() {
    use servetier::{PolicyConfig, PolicyMode};
    let tier = ServeTier::new(TierConfig {
        shards: 1,
        queue_capacity: 64,
        tenants: vec![TenantSpec::new("t0", 1)],
        registry: Some(telemetry::Registry::new_arc()),
        policy: PolicyConfig {
            mode: PolicyMode::Adaptive,
            ..PolicyConfig::default()
        },
        ..TierConfig::default()
    });
    // Eight distinct matrices, one request each, all asking for RCM:
    // below the probe threshold the adaptive policy serves every one
    // in original order, and no reorder job ever runs.
    for i in 0..8u64 {
        let m = MatrixHandle::from_matrix(corpus::scramble(&corpus::mesh2d(10 + i as usize, 9), i));
        let req = request(&m, AlgoSpec::Rcm, KernelKind::OneD);
        let want = m.matrix().spmv_dense(&req.x);
        let response = tier.serve(req).unwrap();
        assert_close(&response.y, &want);
    }
    let stats = tier.stats();
    assert_eq!(stats.served(), 8);
    let snap = tier.registry().snapshot();
    // The engine ran identity orderings only — RCM never computed.
    assert!(
        snap.histogram("reorder.rcm").is_none(),
        "cold one-shot keys must not pay for reordering"
    );
    assert_eq!(
        snap.counter_labeled("policy.decisions", &[("choice", "identity")]),
        Some(8)
    );
}

#[test]
fn adaptive_policy_probes_and_amortizes_hot_keys() {
    use servetier::{PolicyConfig, PolicyMode};
    let tier = ServeTier::new(TierConfig {
        shards: 1,
        queue_capacity: 64,
        tenants: vec![TenantSpec::new("t0", 1)],
        registry: Some(telemetry::Registry::new_arc()),
        policy: PolicyConfig {
            mode: PolicyMode::Adaptive,
            probe_after: 4,
            ..PolicyConfig::default()
        },
        ..TierConfig::default()
    });
    let m = MatrixHandle::from_matrix(corpus::scramble(&corpus::mesh2d(16, 16), 11));
    let req = request(&m, AlgoSpec::Rcm, KernelKind::OneD);
    let want = m.matrix().spmv_dense(&req.x);
    for _ in 0..12 {
        let response = tier.serve(req.clone()).unwrap();
        assert_close(&response.y, &want);
    }
    let stats = tier.stats();
    assert_eq!(stats.served(), 12);
    let snap = tier.registry().snapshot();
    let rcm_runs = snap.histogram("reorder.rcm").map_or(0, |h| h.count);
    assert_eq!(rcm_runs, 1, "a hot key earns exactly one probe reorder");
    assert_eq!(snap.counter("policy.probes"), Some(1));
    assert!(
        snap.counter_labeled("policy.decisions", &[("choice", "reorder")])
            .unwrap_or(0)
            >= 1
    );
}

#[test]
fn prepared_cache_is_lru_and_counts_hits_misses_evictions() {
    let tier = ServeTier::new(TierConfig {
        shards: 1,
        queue_capacity: 64,
        tenants: vec![TenantSpec::new("t0", 1)],
        prepared_capacity: 2,
        registry: Some(telemetry::Registry::new_arc()),
        ..TierConfig::default()
    });
    let a = MatrixHandle::from_matrix(corpus::scramble(&corpus::mesh2d(12, 12), 1));
    let b = MatrixHandle::from_matrix(corpus::scramble(&corpus::mesh2d(13, 12), 2));
    let c = MatrixHandle::from_matrix(corpus::scramble(&corpus::mesh2d(14, 12), 3));
    // Fill the two slots, then keep A hot while C evicts the cold B.
    for m in [&a, &b, &a, &c, &a] {
        tier.serve(request(m, AlgoSpec::Rcm, KernelKind::OneD))
            .unwrap();
    }
    // A survived the eviction (LRU keeps the hot entry; FIFO would
    // have evicted it as the oldest insert): serving A again is a hit.
    tier.serve(request(&a, AlgoSpec::Rcm, KernelKind::OneD))
        .unwrap();
    let stats = tier.stats();
    let shard = &stats.shards[0];
    assert_eq!(shard.prepared_misses, 3, "A, B, C each built once");
    assert_eq!(shard.prepared_hits, 3, "A repeats all hit");
    assert_eq!(shard.prepared_evictions, 1, "B evicted by C");
}

#[test]
fn readiness_tracks_warmup_load_and_drain() {
    let tier = ServeTier::new(TierConfig {
        shards: 1,
        queue_capacity: 64,
        tenants: vec![TenantSpec::new("t0", 1)],
        dispatchers_per_shard: 1,
        min_warm_serves: 1,
        registry: Some(telemetry::Registry::new_arc()),
        ..TierConfig::default()
    });
    // Fresh tier: nothing served yet, so the warm-up gate holds it
    // not-ready (dispatchers may or may not be live yet — either
    // reason is a refusal).
    assert!(tier.readiness().is_err(), "fresh tier must not be ready");

    let matrix = MatrixHandle::from_matrix(corpus::mesh2d(12, 12));
    tier.serve(request(&matrix, AlgoSpec::Rcm, KernelKind::OneD))
        .unwrap();
    // One serve satisfies min_warm_serves, and the (single) dispatcher
    // registered itself live before popping the request.
    assert_eq!(tier.readiness(), Ok(()), "warm tier under load is ready");

    // Draining flips readiness off and stays off; drain is idempotent.
    tier.drain();
    assert_eq!(tier.readiness(), Err("draining".to_string()));
    tier.drain();
    // Submissions after drain resolve as shutdown sheds, not hangs.
    let verdict = tier
        .submit(request(&matrix, AlgoSpec::Rcm, KernelKind::OneD))
        .wait();
    assert!(
        matches!(verdict, Err(TierError::Shed(ShedReason::ShuttingDown))),
        "expected shutdown shed, got {verdict:?}"
    );
}

#[test]
fn slo_tracker_burns_budget_on_a_known_shed_stream() {
    use servetier::SloSpec;
    let registry = telemetry::Registry::new_arc();
    let tier = ServeTier::new(TierConfig {
        shards: 1,
        queue_capacity: 64,
        tenants: vec![TenantSpec::new("t0", 1)],
        registry: Some(Arc::clone(&registry)),
        // Objective 0.9 with a latency bound generous enough that
        // every *served* request is good: only sheds burn budget.
        slo: vec![SloSpec::new("t0", 60_000.0, 0.9)],
        ..TierConfig::default()
    });
    let matrix = MatrixHandle::from_matrix(corpus::mesh2d(12, 12));

    // 8 good serves + 2 deterministic sheds (deadline already passed
    // at submission) = 10 total, bad fraction 0.2 on a 0.1 budget.
    for _ in 0..8 {
        tier.serve(request(&matrix, AlgoSpec::Rcm, KernelKind::OneD))
            .unwrap();
    }
    for _ in 0..2 {
        let mut req = request(&matrix, AlgoSpec::Rcm, KernelKind::OneD);
        req.deadline = Some(Instant::now());
        let verdict = tier.submit(req).wait();
        assert!(
            matches!(verdict, Err(TierError::Shed(ShedReason::Expired))),
            "expected expired shed, got {verdict:?}"
        );
    }

    // The sheds landed on the per-tenant attribution counter.
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter_labeled("tier.shed_tenant", &[("tenant", "t0")]),
        Some(2)
    );

    let slo = tier.slo().expect("configured SLO builds a tracker");
    slo.tick();
    // Lifetime: 0.2 bad on a 0.1 budget -> exhausted (clamped to 0).
    assert_eq!(slo.budget_remaining("t0"), Some(0.0));
    // Windowed: all traffic arrived between the construction baseline
    // and this tick, so the short window sees burn 0.2/0.1 = 2.0.
    let burn = slo.burn_rate("t0", 1).unwrap();
    assert!((burn - 2.0).abs() < 1e-9, "burn {burn}");

    // Derived gauges surface in the shared registry (and therefore in
    // /metrics and the periodic reporter).
    let snap = registry.snapshot();
    assert_eq!(
        snap.gauge_labeled("slo.budget_remaining", &[("tenant", "t0")]),
        Some(0)
    );
    // The tier's default windows are [5, 30, 150]; with only the
    // construction baseline and one tick recorded, each clamps to the
    // same single-interval delta.
    assert_eq!(
        snap.gauge_labeled("slo.burn_rate", &[("tenant", "t0"), ("window", "5")]),
        Some(2000)
    );
}

#[test]
fn slow_serves_burn_budget_without_any_sheds() {
    use servetier::SloSpec;
    let registry = telemetry::Registry::new_arc();
    let tier = ServeTier::new(TierConfig {
        shards: 1,
        queue_capacity: 64,
        tenants: vec![TenantSpec::new("t0", 1)],
        registry: Some(Arc::clone(&registry)),
        // A latency threshold of (effectively) zero: every serve is
        // "slow", so the latency leg alone must exhaust the budget.
        slo: vec![SloSpec::new("t0", 0.0, 0.99)],
        ..TierConfig::default()
    });
    let matrix = MatrixHandle::from_matrix(corpus::mesh2d(12, 12));
    for _ in 0..5 {
        tier.serve(request(&matrix, AlgoSpec::Rcm, KernelKind::OneD))
            .unwrap();
    }
    let slo = tier.slo().unwrap();
    slo.tick();
    let status = &slo.status()[0];
    assert_eq!((status.total, status.bad), (5, 5));
    assert_eq!(slo.budget_remaining("t0"), Some(0.0));
}
