//! Consistent hashing: a ring of virtual nodes routing matrix content
//! hashes to shards.
//!
//! Each shard contributes `vnodes` points on a 64-bit ring; a key is
//! routed to the first point clockwise from its own hash. Virtual
//! nodes smooth the load (a single point per shard would make shard
//! sizes wildly uneven), and the clockwise-successor rule keeps most
//! keys on their shard when the shard count changes — only keys whose
//! successor moved re-route, which is what keeps per-shard ordering
//! caches warm across resizes.

/// SplitMix64: a cheap, well-distributed 64-bit mixer (the statistical
/// workhorse behind many PRNGs). Deterministic, so routing is stable
/// across processes.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// The consistent-hash ring mapping 128-bit content hashes to shard
/// indices.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(ring position, shard)`, sorted by position.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl HashRing {
    /// A ring over `shards` shards with `vnodes` virtual nodes each
    /// (both clamped to ≥ 1).
    pub fn new(shards: usize, vnodes: usize) -> Self {
        let shards = shards.max(1);
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(shards * vnodes);
        for shard in 0..shards {
            for v in 0..vnodes {
                // Mix shard and vnode into one seed; the constant
                // keeps shard 0 / vnode 0 off the trivial fixed point.
                let h = splitmix64(((shard as u64) << 32) ^ v as u64 ^ 0x5ca1ab1e);
                points.push((h, shard));
            }
        }
        points.sort_unstable();
        HashRing { points, shards }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key` (a `CsrMatrix::content_hash`): the first
    /// ring point at or after the key's position, wrapping at the top.
    pub fn route(&self, key: u128) -> usize {
        let h = splitmix64(key as u64 ^ (key >> 64) as u64);
        let idx = self.points.partition_point(|&(p, _)| p < h);
        self.points[idx % self.points.len()].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let ring = HashRing::new(4, 16);
        for k in 0..1000u128 {
            let s = ring.route(k * 0x1234_5678_9abc_def1);
            assert!(s < 4);
            assert_eq!(s, ring.route(k * 0x1234_5678_9abc_def1));
            // A fresh ring with the same shape routes identically.
            assert_eq!(s, HashRing::new(4, 16).route(k * 0x1234_5678_9abc_def1));
        }
    }

    #[test]
    fn load_spreads_across_shards() {
        let ring = HashRing::new(4, 32);
        let mut counts = [0usize; 4];
        for k in 0..4000u128 {
            counts[ring.route(splitmix64(k as u64) as u128)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > 400,
                "shard {i} got {c}/4000 keys — ring badly unbalanced: {counts:?}"
            );
        }
    }

    #[test]
    fn growing_the_ring_moves_a_bounded_fraction() {
        let before = HashRing::new(4, 32);
        let after = HashRing::new(5, 32);
        let moved = (0..4000u128)
            .map(|k| splitmix64(k as u64) as u128)
            .filter(|&k| before.route(k) != after.route(k))
            .count();
        // Ideal consistent hashing moves ~1/5 of keys; allow slack but
        // reject modulo-style full reshuffles (~4/5).
        assert!(
            moved < 2000,
            "{moved}/4000 keys moved when adding one shard"
        );
        assert!(moved > 0, "adding a shard must take over some keys");
    }

    #[test]
    fn imbalance_bounded_across_shard_counts() {
        // 10k synthetic content hashes (128-bit, mixed halves, the
        // same shape `CsrMatrix::content_hash` produces) routed over
        // every production shard count: the most loaded shard must
        // stay within 1.35x of the mean at the default vnode count.
        const KEYS: usize = 10_000;
        let keys: Vec<u128> = (0..KEYS as u64)
            .map(|k| {
                let lo = splitmix64(k ^ 0xfeed_beef) as u128;
                let hi = splitmix64(k.wrapping_mul(0x9e37_79b9) ^ 0x0dd) as u128;
                (hi << 64) | lo
            })
            .collect();
        for shards in [1usize, 2, 4, 8] {
            let ring = HashRing::new(shards, 32);
            let mut counts = vec![0usize; shards];
            for &k in &keys {
                counts[ring.route(k)] += 1;
            }
            let mean = KEYS as f64 / shards as f64;
            let max = *counts.iter().max().unwrap() as f64;
            let min = *counts.iter().min().unwrap() as f64;
            assert_eq!(counts.iter().sum::<usize>(), KEYS);
            assert!(
                max / mean < 1.35,
                "{shards} shards: max load {max} vs mean {mean:.0} ({counts:?})"
            );
            assert!(
                min / mean > 0.65,
                "{shards} shards: min load {min} vs mean {mean:.0} ({counts:?})"
            );
        }
    }

    #[test]
    fn single_shard_takes_everything() {
        let ring = HashRing::new(1, 8);
        for k in 0..100u128 {
            assert_eq!(ring.route(k), 0);
        }
    }
}
