//! The bounded admission queue: load-shedding at the front, weighted
//! fair dequeue at the back.
//!
//! One queue guards each shard. Admission is all-or-nothing — a full
//! queue rejects immediately with [`PushError::QueueFull`] rather than
//! blocking the caller, which is the tier's load-shedding contract —
//! and dequeue interleaves tenants by **stride scheduling**: each
//! tenant lane carries a `pass` value advancing by `1/weight` per
//! served request, and the non-empty lane with the smallest pass is
//! served next, so a tenant with weight 2 gets twice the dequeue share
//! of a tenant with weight 1 whenever both are backlogged. Within a
//! lane, requests order by priority (higher first), then deadline
//! (earlier first; no deadline sorts last), then submission order —
//! the deadline-aware dequeue that gives urgent requests a chance to
//! finish before they expire.

use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Why a push was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue holds `capacity` requests already; shed this one.
    QueueFull,
    /// The tenant index is out of range for this queue.
    UnknownTenant,
    /// The queue is closed (tier shutting down).
    ShuttingDown,
}

/// Dequeue key within one tenant lane. Larger = served first (the heap
/// is a max-heap): higher priority, then earlier deadline (`None` =
/// no deadline, served after every dated request of equal priority),
/// then earlier submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EntryKey {
    priority: u8,
    deadline: Option<Instant>,
    seq: u64,
}

impl Ord for EntryKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        self.priority
            .cmp(&other.priority)
            .then_with(|| match (self.deadline, other.deadline) {
                (Some(a), Some(b)) => b.cmp(&a),
                (Some(_), None) => Ordering::Greater,
                (None, Some(_)) => Ordering::Less,
                (None, None) => Ordering::Equal,
            })
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for EntryKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct Entry<T> {
    key: EntryKey,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

struct Lane<T> {
    /// Stride per served request: `1 / weight`.
    stride: f64,
    /// Virtual time this lane is scheduled at.
    pass: f64,
    heap: BinaryHeap<Entry<T>>,
}

struct State<T> {
    lanes: Vec<Lane<T>>,
    len: usize,
    /// Pass of the most recently served lane — the clock a newly
    /// backlogged lane joins at, so an idle tenant cannot bank credit.
    global_pass: f64,
    seq: u64,
    closed: bool,
}

/// A bounded, tenant-aware admission queue (see the module docs).
pub struct AdmissionQueue<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
    capacity: usize,
}

impl<T> AdmissionQueue<T> {
    /// A queue over one lane per entry of `tenant_weights` (weights
    /// clamped to ≥ 1), holding at most `capacity` requests in total.
    pub fn new(tenant_weights: &[u32], capacity: usize) -> Self {
        AdmissionQueue {
            state: Mutex::new(State {
                lanes: tenant_weights
                    .iter()
                    .map(|&w| Lane {
                        stride: 1.0 / f64::from(w.max(1)),
                        pass: 0.0,
                        heap: BinaryHeap::new(),
                    })
                    .collect(),
                len: 0,
                global_pass: 0.0,
                seq: 0,
                closed: false,
            }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admit a request, or reject it with a shed reason. Never blocks.
    pub fn push(
        &self,
        tenant: usize,
        priority: u8,
        deadline: Option<Instant>,
        item: T,
    ) -> Result<(), PushError> {
        let mut s = self.state.lock().unwrap();
        if s.closed {
            return Err(PushError::ShuttingDown);
        }
        if tenant >= s.lanes.len() {
            return Err(PushError::UnknownTenant);
        }
        if s.len >= self.capacity {
            return Err(PushError::QueueFull);
        }
        s.seq += 1;
        let seq = s.seq;
        let global_pass = s.global_pass;
        let lane = &mut s.lanes[tenant];
        if lane.heap.is_empty() && lane.pass < global_pass {
            lane.pass = global_pass;
        }
        lane.heap.push(Entry {
            key: EntryKey {
                priority,
                deadline,
                seq,
            },
            item,
        });
        s.len += 1;
        drop(s);
        self.cv.notify_one();
        Ok(())
    }

    /// Dequeue the next request per the fairness policy, blocking
    /// while the queue is empty. Returns `None` once the queue is
    /// closed (remaining items are only reachable via
    /// [`AdmissionQueue::drain_remaining`]).
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().unwrap();
        loop {
            if s.closed {
                return None;
            }
            if s.len > 0 {
                let tenant = s
                    .lanes
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| !l.heap.is_empty())
                    .min_by(|(_, a), (_, b)| {
                        a.pass.partial_cmp(&b.pass).expect("pass values are finite")
                    })
                    .map(|(i, _)| i)
                    .expect("len > 0 implies a non-empty lane");
                s.global_pass = s.lanes[tenant].pass;
                let lane = &mut s.lanes[tenant];
                lane.pass += lane.stride;
                let entry = lane.heap.pop().expect("lane checked non-empty");
                s.len -= 1;
                return Some(entry.item);
            }
            s = self.cv.wait(s).unwrap();
        }
    }

    /// Requests currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Close the queue: further pushes fail with `ShuttingDown`, and
    /// every blocked or future [`AdmissionQueue::pop`] returns `None`.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.cv.notify_all();
    }

    /// Remove and return everything still queued (shutdown path: the
    /// tier fulfils these with a shed-on-shutdown error).
    pub fn drain_remaining(&self) -> Vec<T> {
        let mut s = self.state.lock().unwrap();
        let mut out = Vec::with_capacity(s.len);
        for lane in &mut s.lanes {
            out.extend(lane.heap.drain().map(|e| e.item));
        }
        s.len = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn weighted_fair_dequeue_matches_weights() {
        // Tenant 0 weight 2, tenant 1 weight 1: with both backlogged,
        // dequeues interleave 2:1 exactly.
        let q = AdmissionQueue::new(&[2, 1], 64);
        for i in 0..12u32 {
            q.push(0, 0, None, (0u32, i)).unwrap();
            q.push(1, 0, None, (1u32, i)).unwrap();
        }
        let mut counts = [0usize; 2];
        for _ in 0..9 {
            let (tenant, _) = q.pop().unwrap();
            counts[tenant as usize] += 1;
        }
        assert_eq!(counts, [6, 3], "stride scheduling must honor 2:1");
    }

    #[test]
    fn idle_tenant_does_not_bank_credit() {
        let q = AdmissionQueue::new(&[1, 1], 64);
        // Tenant 0 alone is served 10 times, advancing the clock.
        for i in 0..10u32 {
            q.push(0, 0, None, (0u32, i)).unwrap();
        }
        for _ in 0..10 {
            assert_eq!(q.pop().unwrap().0, 0);
        }
        // Tenant 1 arrives late: it joins at the current clock and
        // alternates, rather than monopolising to "catch up".
        for i in 0..6u32 {
            q.push(0, 0, None, (0, i)).unwrap();
            q.push(1, 0, None, (1, i)).unwrap();
        }
        let mut counts = [0usize; 2];
        for _ in 0..6 {
            counts[q.pop().unwrap().0 as usize] += 1;
        }
        assert_eq!(counts, [3, 3]);
    }

    #[test]
    fn priority_then_deadline_then_fifo_within_a_lane() {
        let q = AdmissionQueue::new(&[1], 64);
        let now = Instant::now();
        q.push(0, 0, None, "low-first").unwrap();
        q.push(0, 1, Some(now + Duration::from_secs(9)), "hi-late")
            .unwrap();
        q.push(0, 1, Some(now + Duration::from_secs(1)), "hi-early")
            .unwrap();
        q.push(0, 1, None, "hi-undated").unwrap();
        q.push(0, 0, None, "low-second").unwrap();
        let order: Vec<&str> = (0..5).map(|_| q.pop().unwrap()).collect();
        assert_eq!(
            order,
            [
                "hi-early",
                "hi-late",
                "hi-undated",
                "low-first",
                "low-second"
            ]
        );
    }

    #[test]
    fn full_queue_sheds_and_bad_tenant_rejected() {
        let q = AdmissionQueue::new(&[1], 2);
        q.push(0, 0, None, 1).unwrap();
        q.push(0, 0, None, 2).unwrap();
        assert_eq!(q.push(0, 0, None, 3), Err(PushError::QueueFull));
        assert_eq!(q.push(7, 0, None, 4), Err(PushError::UnknownTenant));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_wakes_poppers_and_drain_returns_leftovers() {
        let q = std::sync::Arc::new(AdmissionQueue::new(&[1], 8));
        q.push(0, 0, None, 1).unwrap();
        q.push(0, 0, None, 2).unwrap();
        let waiter = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || {
                // Drain both, then block until close.
                let mut got = vec![q.pop().unwrap(), q.pop().unwrap()];
                got.extend(q.pop());
                got
            })
        };
        // Give the waiter time to reach the blocking pop, then close.
        while !q.is_empty() {
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(10));
        q.push(0, 0, None, 3).unwrap();
        q.close();
        assert_eq!(q.push(0, 0, None, 4), Err(PushError::ShuttingDown));
        let got = waiter.join().unwrap();
        assert_eq!(&got[..2], &[1, 2]);
        // Item 3 may have been popped before close or left behind;
        // either way nothing is lost.
        let leftover = q.drain_remaining();
        assert_eq!(got.len() == 3, leftover.is_empty());
        assert_eq!(q.len(), 0);
    }
}
