//! # servetier — the sharded, admission-controlled serving front door
//!
//! The `engine` crate amortises reordering cost for one process; this
//! crate turns that into a **serving tier** with the operational
//! properties a shared deployment needs:
//!
//! 1. **Shard routing** ([`HashRing`]): N engine shards, each with its
//!    own ordering/plan caches and reorder team. Requests route by
//!    consistent hash of `CsrMatrix::content_hash`, so one shard owns
//!    each matrix (its caches stay warm) and resizing the tier moves
//!    only a bounded fraction of matrices.
//! 2. **Admission control** ([`AdmissionQueue`]): a bounded per-shard
//!    queue that sheds with a reason ([`ShedReason`]) instead of
//!    building unbounded backlog, dequeues tenants by stride-scheduled
//!    weighted fair sharing, and orders each tenant's lane by priority
//!    then deadline.
//! 3. **Deadlines end to end**: already-expired requests are shed at
//!    submission; expiry at dequeue cancels before any work; the
//!    deadline rides into the engine ([`engine::SubmitOptions`]) so an
//!    expired request never reaches the reorder stage.
//! 4. **Answer delivery** ([`SpmvResponse`]): requests carry an input
//!    vector in original index space; the shard permutes it into the
//!    reordered space, runs SpMV via the cached plan, and applies the
//!    **inverse** permutation so `y` comes back in original row order —
//!    callers never see the reordering at all.
//!
//! ```
//! use engine::{AlgoSpec, MatrixHandle};
//! use servetier::{ServeTier, SpmvRequest, TenantSpec, TierConfig};
//! use spmv::KernelKind;
//! use std::sync::Arc;
//!
//! let tier = ServeTier::new(TierConfig {
//!     shards: 2,
//!     tenants: vec![TenantSpec::new("t0", 1)],
//!     registry: Some(telemetry::Registry::new_arc()),
//!     ..TierConfig::default()
//! });
//! let matrix = MatrixHandle::from_matrix(corpus::mesh2d(12, 12));
//! let x = Arc::new(vec![1.0; matrix.matrix().ncols()]);
//! let response = tier
//!     .serve(SpmvRequest {
//!         tenant: "t0".into(),
//!         matrix: matrix.clone(),
//!         algo: AlgoSpec::Rcm,
//!         kernel: KernelKind::OneD,
//!         x: Arc::clone(&x),
//!         priority: 0,
//!         deadline: None,
//!     })
//!     .unwrap();
//! // The answer is in original index order, as if no reordering ran.
//! let reference = matrix.matrix().spmv_dense(&x);
//! for (got, want) in response.y.iter().zip(&reference) {
//!     assert!((got - want).abs() <= 1e-9 * (1.0 + want.abs()));
//! }
//! ```

mod admission;
mod hash;
mod tier;

pub use admission::{AdmissionQueue, PushError};
pub use hash::HashRing;
pub use obsv::{OpsSource, SloSpec, SloTracker};
pub use policy::{PolicyConfig, PolicyMode};
pub use tier::{
    ServeTier, ShardStats, ShedReason, SpmvRequest, SpmvResponse, TenantSpec, TierConfig,
    TierError, TierStats, TierTicket,
};
