//! The serving tier: shard routing, admission control, and end-to-end
//! answer delivery.
//!
//! [`ServeTier`] is the front door over N [`engine::Engine`] shards.
//! A request names a matrix, an ordering algorithm, a kernel, and an
//! input vector `x`; the tier routes it by consistent hash of the
//! matrix's content address (so one shard owns each matrix's ordering
//! and plan caches), admits it through that shard's bounded
//! [`AdmissionQueue`] (shedding with a reason when full), and a shard
//! dispatcher serves it deadline-aware: expired requests are cancelled
//! at dequeue — and again inside the engine, before any reorder work —
//! rather than computed. The answer comes back in the **original**
//! index space: the shard permutes `x` into the reordered space, runs
//! SpMV on the cached reordered matrix, and applies the inverse
//! permutation to `y` before fulfilling the ticket.

use crate::admission::{AdmissionQueue, PushError};
use crate::hash::HashRing;
use engine::{AlgoSpec, Engine, EngineConfig, EngineError, MatrixHandle, SubmitOptions};
use policy::{PolicyConfig, PolicyEngine};
use reorder::ReorderResult;
use spmv::KernelKind;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use telemetry::trace::{FlightRecorder, TraceCtx, TraceSpan};
use telemetry::{Counter, Gauge, Histogram, Registry};

/// How many (request id → trace id) pairs the tier remembers for
/// [`ServeTier::trace_summary`].
const TRACED_INDEX_CAP: usize = 128;

/// One tenant of the tier: a name (used in requests and metric labels)
/// and a dequeue weight (a weight-2 tenant gets twice the service share
/// of a weight-1 tenant when both are backlogged).
#[derive(Debug, Clone)]
pub struct TenantSpec {
    pub name: String,
    pub weight: u32,
}

impl TenantSpec {
    pub fn new(name: impl Into<String>, weight: u32) -> Self {
        TenantSpec {
            name: name.into(),
            weight,
        }
    }
}

/// Tier construction parameters.
#[derive(Debug, Clone)]
pub struct TierConfig {
    /// Engine shards (each with its own caches, pool, and queue).
    pub shards: usize,
    /// Virtual nodes per shard on the consistent-hash ring.
    pub vnodes: usize,
    /// The tenants allowed to submit; requests naming anyone else are
    /// shed with [`ShedReason::UnknownTenant`].
    pub tenants: Vec<TenantSpec>,
    /// Per-shard admission-queue capacity; pushes past it are shed
    /// with [`ShedReason::QueueFull`].
    pub queue_capacity: usize,
    /// Dispatcher threads per shard (each serves one request at a time
    /// end to end).
    pub dispatchers_per_shard: usize,
    /// Threads for the SpMV execution team of each shard.
    pub spmv_threads: usize,
    /// Reordered-matrix cache entries per shard (one per distinct
    /// (matrix, algorithm) pair recently served).
    pub prepared_capacity: usize,
    /// Template for the per-shard engines. The tier overrides
    /// `registry` (shared tier registry), `metric_labels`
    /// (`shard="<i>"`), and disables the engines' own trace sampling —
    /// the tier samples at admission and hands each engine a parent
    /// context instead.
    pub engine: EngineConfig,
    /// Registry all shards report into. `None` = process global.
    pub registry: Option<Arc<Registry>>,
    /// Flight recorder for request-scoped tracing across the tier and
    /// the engines. `None` disables tracing.
    pub recorder: Option<Arc<FlightRecorder>>,
    /// Trace sample stride over tier request IDs (`0` = never).
    pub trace_sample_every: u64,
    /// Reordering policy shared by all shards. The default honours
    /// every requested reordering ([`policy::PolicyMode::Always`], the
    /// pre-policy behaviour); the tier overrides the config's registry
    /// with its own.
    pub policy: PolicyConfig,
    /// Requests the tier must have served before [`ServeTier::readiness`]
    /// reports ready (`0` = ready as soon as all dispatchers are live).
    /// Lets a deployment keep traffic away until caches are warm.
    pub min_warm_serves: u64,
    /// Per-tenant service-level objectives. Non-empty builds an
    /// [`obsv::SloTracker`] over the tier's own `tier.request{tenant}`
    /// histograms and `tier.shed_tenant{tenant}` counters, reachable
    /// via [`ServeTier::slo`] (tick it yourself or hand it to an
    /// `obsv::ObsvServer` / background ticker).
    pub slo: Vec<obsv::SloSpec>,
}

impl Default for TierConfig {
    fn default() -> Self {
        TierConfig {
            shards: 1,
            vnodes: 32,
            tenants: vec![TenantSpec::new("default", 1)],
            queue_capacity: 256,
            dispatchers_per_shard: 1,
            spmv_threads: 2,
            prepared_capacity: 64,
            engine: EngineConfig::default(),
            registry: None,
            recorder: None,
            trace_sample_every: 0,
            policy: PolicyConfig {
                mode: policy::PolicyMode::Always,
                ..PolicyConfig::default()
            },
            min_warm_serves: 0,
            slo: Vec::new(),
        }
    }
}

/// Why the tier refused to serve a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The owning shard's admission queue was full.
    QueueFull,
    /// The deadline had already passed (at submission or at dequeue).
    Expired,
    /// The request named a tenant the tier was not configured with.
    UnknownTenant,
    /// The tier is shutting down.
    ShuttingDown,
}

impl ShedReason {
    /// The metric-label value for `tier.shed{reason=...}`.
    pub fn as_str(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::Expired => "expired",
            ShedReason::UnknownTenant => "unknown_tenant",
            ShedReason::ShuttingDown => "shutting_down",
        }
    }
}

/// Errors surfaced by [`TierTicket::wait`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TierError {
    /// Load-shed before (or instead of) service.
    Shed(ShedReason),
    /// The shard engine failed to produce an ordering.
    Engine(EngineError),
    /// The request was malformed (e.g. `x` length ≠ matrix columns).
    InvalidRequest(String),
}

impl std::fmt::Display for TierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TierError::Shed(r) => write!(f, "request shed: {}", r.as_str()),
            TierError::Engine(e) => write!(f, "engine error: {e}"),
            TierError::InvalidRequest(m) => write!(f, "invalid request: {m}"),
        }
    }
}

impl std::error::Error for TierError {}

/// One SpMV serving request.
#[derive(Debug, Clone)]
pub struct SpmvRequest {
    /// Must name a configured [`TenantSpec`].
    pub tenant: String,
    pub matrix: MatrixHandle,
    pub algo: AlgoSpec,
    pub kernel: KernelKind,
    /// The input vector, in the matrix's **original** column order.
    pub x: Arc<Vec<f64>>,
    /// Larger = dequeued first within the tenant's lane.
    pub priority: u8,
    /// Absolute deadline; expired requests are cancelled, not served.
    pub deadline: Option<Instant>,
}

/// A served answer.
#[derive(Debug, Clone)]
pub struct SpmvResponse {
    /// `y = A·x` in the matrix's **original** row order.
    pub y: Vec<f64>,
    /// Shard that served the request.
    pub shard: usize,
    /// Tier request ID (1-based submission order).
    pub request_id: u64,
    /// Submit-to-dequeue time in the admission queue.
    pub queue_wait: Duration,
    /// Dequeue-to-answer service time.
    pub service: Duration,
}

/// The slot a dispatcher fulfils and a [`TierTicket`] waits on.
struct ResponseSlot {
    result: Mutex<Option<Result<SpmvResponse, TierError>>>,
    cv: Condvar,
}

impl ResponseSlot {
    fn new() -> Arc<Self> {
        Arc::new(ResponseSlot {
            result: Mutex::new(None),
            cv: Condvar::new(),
        })
    }

    fn fulfil(&self, result: Result<SpmvResponse, TierError>) {
        let mut slot = self.result.lock().unwrap();
        // First writer wins (a request can only be resolved once).
        if slot.is_none() {
            *slot = Some(result);
            self.cv.notify_all();
        }
    }

    fn wait(&self) -> Result<SpmvResponse, TierError> {
        let mut slot = self.result.lock().unwrap();
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.cv.wait(slot).unwrap();
        }
    }
}

/// A pending (or already shed) serving request.
pub struct TierTicket {
    slot: Arc<ResponseSlot>,
    request_id: u64,
    root: TraceSpan,
}

impl TierTicket {
    /// Block until the answer (or shed/error verdict) arrives.
    pub fn wait(self) -> Result<SpmvResponse, TierError> {
        let TierTicket { slot, root, .. } = self;
        let _wait = root.ctx().span("tier.wait");
        slot.wait()
    }

    /// The tier-assigned request ID (1-based submission order).
    pub fn request_id(&self) -> u64 {
        self.request_id
    }

    /// Trace context parented at this request's `tier.request` root
    /// (disabled unless the request was sampled).
    pub fn trace_ctx(&self) -> TraceCtx {
        self.root.ctx()
    }
}

/// The unit travelling through a shard's admission queue.
struct QueuedRequest {
    request: SpmvRequest,
    tenant_index: usize,
    request_id: u64,
    slot: Arc<ResponseSlot>,
    submitted: Instant,
    trace: TraceCtx,
}

/// A prepared (reordered) matrix, cached per shard so repeat requests
/// skip the permutation work entirely.
struct Prepared {
    handle: MatrixHandle,
    result: ReorderResult,
}

/// LRU cache of prepared matrices keyed by (content hash, algorithm).
///
/// A FIFO here (the original design) evicts the *hottest* entry under
/// a scan-plus-hot-set workload: a popular matrix admitted early ages
/// to the front of the queue no matter how often it is hit. Recency
/// ordering keeps the working set resident. Recency is tracked with a
/// monotone tick per entry and a `BTreeMap<tick, key>` index, so both
/// `get` and `insert` are O(log n) with no per-hit scan.
struct PreparedCache {
    map: HashMap<(u128, AlgoSpec), (Arc<Prepared>, u64)>,
    recency: std::collections::BTreeMap<u64, (u128, AlgoSpec)>,
    tick: u64,
    capacity: usize,
}

impl PreparedCache {
    fn new(capacity: usize) -> Self {
        PreparedCache {
            map: HashMap::new(),
            recency: std::collections::BTreeMap::new(),
            tick: 0,
            capacity: capacity.max(1),
        }
    }

    /// Look up and touch: a hit moves the entry to most-recently-used.
    fn get(&mut self, key: &(u128, AlgoSpec)) -> Option<Arc<Prepared>> {
        self.tick += 1;
        let tick = self.tick;
        let (value, slot) = self.map.get_mut(key)?;
        let value = Arc::clone(value);
        self.recency.remove(slot);
        *slot = tick;
        self.recency.insert(tick, *key);
        Some(value)
    }

    /// Insert (or refresh) an entry; returns how many entries were
    /// evicted to make room.
    fn insert(&mut self, key: (u128, AlgoSpec), value: Arc<Prepared>) -> u64 {
        self.tick += 1;
        if let Some((_, old_tick)) = self.map.insert(key, (value, self.tick)) {
            self.recency.remove(&old_tick);
        }
        self.recency.insert(self.tick, key);
        let mut evicted = 0;
        while self.map.len() > self.capacity {
            let Some((_, old_key)) = self.recency.pop_first() else {
                break;
            };
            self.map.remove(&old_key);
            evicted += 1;
        }
        evicted
    }
}

/// Per-shard counters (shared registry, `shard="<i>"` labels).
struct ShardMetrics {
    admitted: Arc<Counter>,
    served: Arc<Counter>,
    shed_queue_full: Arc<Counter>,
    shed_expired: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    prepared_hits: Arc<Counter>,
    prepared_misses: Arc<Counter>,
    prepared_evictions: Arc<Counter>,
}

impl ShardMetrics {
    fn new(registry: &Registry, shard: &str) -> Self {
        let labels = [("shard", shard)];
        ShardMetrics {
            admitted: registry.counter_labeled("tier.admitted", &labels),
            served: registry.counter_labeled("tier.served", &labels),
            shed_queue_full: registry
                .counter_labeled("tier.shed", &[("shard", shard), ("reason", "queue_full")]),
            shed_expired: registry
                .counter_labeled("tier.shed", &[("shard", shard), ("reason", "expired")]),
            queue_depth: registry.gauge_labeled("tier.queue_depth", &labels),
            prepared_hits: registry.counter_labeled("tier.prepared.hits", &labels),
            prepared_misses: registry.counter_labeled("tier.prepared.misses", &labels),
            prepared_evictions: registry.counter_labeled("tier.prepared.evictions", &labels),
        }
    }
}

/// One shard: an engine, its admission queue, and its SpMV team.
struct ShardInner {
    index: usize,
    engine: Engine,
    queue: AdmissionQueue<QueuedRequest>,
    spmv_team: team::ThreadTeam,
    spmv_threads: usize,
    prepared: Mutex<PreparedCache>,
    policy: Arc<PolicyEngine>,
    metrics: ShardMetrics,
    /// End-to-end latency histogram per tenant
    /// (`tier.request{tenant=...}`), indexed like the tenant list.
    tenant_hists: Vec<Arc<Histogram>>,
    /// Sheds attributed per tenant (`tier.shed_tenant{tenant=...}`) —
    /// the SLO tracker's "bad due to shedding" input. Shard-agnostic
    /// series, so all shards share the same counters.
    tenant_shed: Vec<Arc<Counter>>,
}

/// Shared readiness state: what `/readyz` asks.
struct ReadyState {
    expected_dispatchers: usize,
    live_dispatchers: AtomicUsize,
    draining: AtomicBool,
    min_warm_serves: u64,
}

/// Point-in-time statistics for one shard.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardStats {
    pub admitted: u64,
    pub served: u64,
    pub shed_queue_full: u64,
    pub shed_expired: u64,
    pub queue_depth: i64,
    pub prepared_hits: u64,
    pub prepared_misses: u64,
    pub prepared_evictions: u64,
    pub engine: engine::EngineStats,
}

/// Point-in-time statistics for the whole tier.
#[derive(Debug, Clone, Default)]
pub struct TierStats {
    pub shards: Vec<ShardStats>,
    pub shed_unknown_tenant: u64,
}

impl TierStats {
    /// Requests served across all shards.
    pub fn served(&self) -> u64 {
        self.shards.iter().map(|s| s.served).sum()
    }

    /// Requests shed across all shards (any reason).
    pub fn shed(&self) -> u64 {
        self.shed_unknown_tenant
            + self
                .shards
                .iter()
                .map(|s| s.shed_queue_full + s.shed_expired)
                .sum::<u64>()
    }
}

/// The sharded, admission-controlled serving tier (see module docs).
pub struct ServeTier {
    ring: HashRing,
    shards: Vec<Arc<ShardInner>>,
    policy: Arc<PolicyEngine>,
    dispatchers: Mutex<Vec<JoinHandle<()>>>,
    tenants: Vec<TenantSpec>,
    /// tenant name → lane index.
    tenant_index: HashMap<String, usize>,
    registry: Arc<Registry>,
    recorder: Option<Arc<FlightRecorder>>,
    sample_every: u64,
    shed_unknown_tenant: Arc<Counter>,
    next_request: AtomicU64,
    traced: Mutex<std::collections::VecDeque<(u64, u64)>>,
    ready: Arc<ReadyState>,
    slo: Option<Arc<obsv::SloTracker>>,
}

impl ServeTier {
    /// Build the shards and start their dispatchers.
    pub fn new(config: TierConfig) -> Self {
        let registry = config.registry.unwrap_or_else(Registry::global);
        describe_tier_metrics(&registry);
        let tenants = if config.tenants.is_empty() {
            vec![TenantSpec::new("default", 1)]
        } else {
            config.tenants
        };
        let tenant_index: HashMap<String, usize> = tenants
            .iter()
            .enumerate()
            .map(|(i, t)| (t.name.clone(), i))
            .collect();
        let weights: Vec<u32> = tenants.iter().map(|t| t.weight).collect();
        let nshards = config.shards.max(1);
        let ring = HashRing::new(nshards, config.vnodes);
        let policy = {
            let mut policy_config = config.policy.clone();
            policy_config.registry = Some(Arc::clone(&registry));
            Arc::new(PolicyEngine::new(policy_config))
        };

        let mut shards = Vec::with_capacity(nshards);
        for index in 0..nshards {
            let shard_label = index.to_string();
            let mut engine_config = config.engine.clone();
            engine_config.registry = Some(Arc::clone(&registry));
            // The tier owns sampling: engines trace only through the
            // per-request parent context the dispatcher hands them.
            engine_config.recorder = None;
            engine_config.trace_sample_every = 0;
            engine_config.metric_labels = vec![("shard".to_string(), shard_label.clone())];
            let tenant_hists = tenants
                .iter()
                .map(|t| registry.histogram_labeled("tier.request", &[("tenant", &t.name)]))
                .collect();
            let tenant_shed = tenants
                .iter()
                .map(|t| registry.counter_labeled("tier.shed_tenant", &[("tenant", &t.name)]))
                .collect();
            shards.push(Arc::new(ShardInner {
                index,
                engine: Engine::new(engine_config),
                queue: AdmissionQueue::new(&weights, config.queue_capacity),
                spmv_team: team::ThreadTeam::new_in(&registry, config.spmv_threads.max(1)),
                spmv_threads: config.spmv_threads.max(1),
                prepared: Mutex::new(PreparedCache::new(config.prepared_capacity)),
                policy: Arc::clone(&policy),
                metrics: ShardMetrics::new(&registry, &shard_label),
                tenant_hists,
                tenant_shed,
            }));
        }

        let ready = Arc::new(ReadyState {
            expected_dispatchers: nshards * config.dispatchers_per_shard.max(1),
            live_dispatchers: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            min_warm_serves: config.min_warm_serves,
        });
        let mut dispatchers = Vec::new();
        for shard in &shards {
            for d in 0..config.dispatchers_per_shard.max(1) {
                let shard = Arc::clone(shard);
                let ready_state = Arc::clone(&ready);
                dispatchers.push(
                    std::thread::Builder::new()
                        .name(format!("tier-shard{}-d{d}", shard.index))
                        .spawn(move || {
                            ready_state.live_dispatchers.fetch_add(1, Ordering::Release);
                            dispatch_loop(&shard);
                            ready_state.live_dispatchers.fetch_sub(1, Ordering::Release);
                        })
                        .expect("spawn tier dispatcher"),
                );
            }
        }

        let slo = (!config.slo.is_empty()).then(|| {
            obsv::SloTracker::new(
                Arc::clone(&registry),
                obsv::SloConfig {
                    specs: config.slo.clone(),
                    ..obsv::SloConfig::default()
                },
            )
        });

        ServeTier {
            ring,
            shards,
            policy,
            dispatchers: Mutex::new(dispatchers),
            tenants,
            tenant_index,
            shed_unknown_tenant: registry
                .counter_labeled("tier.shed", &[("reason", "unknown_tenant")]),
            registry,
            recorder: config.recorder,
            sample_every: config.trace_sample_every,
            next_request: AtomicU64::new(0),
            traced: Mutex::new(std::collections::VecDeque::new()),
            ready,
            slo,
        }
    }

    /// The registry the tier and its shards report into.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The reordering policy shared by all shards (decision engine,
    /// amortization ledger, online corrector).
    pub fn policy(&self) -> &Arc<PolicyEngine> {
        &self.policy
    }

    /// The flight recorder tracing sampled requests, if configured.
    pub fn recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.recorder.as_ref()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The configured tenants, in lane order.
    pub fn tenants(&self) -> &[TenantSpec] {
        &self.tenants
    }

    /// The shard that owns a matrix: consistent hash of its *lineage
    /// root* — the oldest recorded ancestor for a mutated matrix, its
    /// own content address otherwise. Routing by lineage keeps a
    /// matrix and its delta descendants on the same shard, so the
    /// descendant's reorder finds the parent's cached component ranges
    /// and splices instead of recomputing.
    pub fn route(&self, matrix: &MatrixHandle) -> usize {
        let key = matrix
            .matrix()
            .lineage_root()
            .unwrap_or_else(|| matrix.content_hash());
        self.ring.route(key)
    }

    /// The engine of the shard owning `matrix` — escape hatch for
    /// ordering-only work (e.g. the experiments' measurement harness)
    /// that wants the same cache the serving path fills.
    pub fn engine_for(&self, matrix: &MatrixHandle) -> &Engine {
        &self.shards[self.route(matrix)].engine
    }

    /// Submit one request. Returns a ticket immediately; sheds
    /// (queue full, unknown tenant, already-expired deadline) surface
    /// as an immediately-ready `Err` on [`TierTicket::wait`].
    pub fn submit(&self, request: SpmvRequest) -> TierTicket {
        let request_id = self.next_request.fetch_add(1, Ordering::Relaxed) + 1;
        let shard_index = self.route(&request.matrix);
        let shard = &self.shards[shard_index];
        let root = self.start_request_trace(request_id, shard_index, &request);
        let slot = ResponseSlot::new();
        let ticket = TierTicket {
            slot: Arc::clone(&slot),
            request_id,
            root,
        };

        let Some(&tenant_index) = self.tenant_index.get(&request.tenant) else {
            self.shed_unknown_tenant.inc();
            ticket.root.ctx().instant("tier.shed");
            slot.fulfil(Err(TierError::Shed(ShedReason::UnknownTenant)));
            return ticket;
        };
        let ncols = request.matrix.matrix().ncols();
        if request.x.len() != ncols {
            slot.fulfil(Err(TierError::InvalidRequest(format!(
                "x has {} entries but the matrix has {ncols} columns",
                request.x.len()
            ))));
            return ticket;
        }
        let now = Instant::now();
        if request.deadline.is_some_and(|d| d <= now) {
            shard.metrics.shed_expired.inc();
            shard.tenant_shed[tenant_index].inc();
            ticket.root.ctx().instant("tier.expired");
            slot.fulfil(Err(TierError::Shed(ShedReason::Expired)));
            return ticket;
        }

        let priority = request.priority;
        let deadline = request.deadline;
        let queued = QueuedRequest {
            request,
            tenant_index,
            request_id,
            slot: Arc::clone(&slot),
            submitted: now,
            trace: ticket.root.ctx(),
        };
        // Count the request as queued before pushing: a dispatcher may
        // pop (and decrement) the instant push returns, and the gauge
        // saturates at zero rather than going transiently negative.
        shard.metrics.queue_depth.inc();
        match shard.queue.push(tenant_index, priority, deadline, queued) {
            Ok(()) => shard.metrics.admitted.inc(),
            Err(push_error) => {
                shard.metrics.queue_depth.dec();
                let reason = match push_error {
                    PushError::QueueFull => {
                        shard.metrics.shed_queue_full.inc();
                        shard.tenant_shed[tenant_index].inc();
                        ShedReason::QueueFull
                    }
                    PushError::UnknownTenant => {
                        self.shed_unknown_tenant.inc();
                        ShedReason::UnknownTenant
                    }
                    PushError::ShuttingDown => {
                        shard.tenant_shed[tenant_index].inc();
                        ShedReason::ShuttingDown
                    }
                };
                ticket.root.ctx().instant("tier.shed");
                slot.fulfil(Err(TierError::Shed(reason)));
            }
        }
        ticket
    }

    /// Submit and wait: the blocking convenience call.
    pub fn serve(&self, request: SpmvRequest) -> Result<SpmvResponse, TierError> {
        self.submit(request).wait()
    }

    /// Open the `tier.request` root span when `request_id` falls on the
    /// sample stride; a disabled span otherwise.
    fn start_request_trace(
        &self,
        request_id: u64,
        shard: usize,
        request: &SpmvRequest,
    ) -> TraceSpan {
        let Some(recorder) = &self.recorder else {
            return TraceSpan::disabled();
        };
        if self.sample_every == 0 || !(request_id - 1).is_multiple_of(self.sample_every) {
            return TraceSpan::disabled();
        }
        let ctx = recorder.start_trace();
        let Some(trace_id) = ctx.trace_id() else {
            return TraceSpan::disabled();
        };
        let mut root = ctx.span("tier.request");
        root.arg("request", request_id);
        root.arg("shard", shard as u64);
        // Span args hold only static strings; the tenant travels as its
        // lane index (resolve via the tier config).
        if let Some(&t) = self.tenant_index.get(&request.tenant) {
            root.arg("tenant", t as u64);
        }
        let mut traced = self.traced.lock().unwrap();
        if traced.len() >= TRACED_INDEX_CAP {
            traced.pop_front();
        }
        traced.push_back((request_id, trace_id));
        root
    }

    /// The trace ID a sampled request recorded under, if still indexed.
    pub fn trace_id_for(&self, request_id: u64) -> Option<u64> {
        self.traced
            .lock()
            .unwrap()
            .iter()
            .find(|(r, _)| *r == request_id)
            .map(|(_, t)| *t)
    }

    /// Plain-text stage breakdown for a sampled request.
    pub fn trace_summary(&self, request_id: u64) -> Option<String> {
        self.request_trace(request_id).map(|snap| snap.summary())
    }

    /// Chrome-trace JSON for a sampled request.
    pub fn trace_chrome_json(&self, request_id: u64) -> Option<String> {
        self.request_trace(request_id)
            .map(|snap| snap.to_chrome_json())
    }

    fn request_trace(&self, request_id: u64) -> Option<telemetry::TraceSnapshot> {
        let recorder = self.recorder.as_ref()?;
        let trace_id = self.trace_id_for(request_id)?;
        let snap = recorder.snapshot().filter_trace(trace_id);
        (!snap.is_empty()).then_some(snap)
    }

    /// The SLO tracker, when [`TierConfig::slo`] named any tenants.
    pub fn slo(&self) -> Option<&Arc<obsv::SloTracker>> {
        self.slo.as_ref()
    }

    /// Should this tier receive traffic? `Err(reason)` while
    /// dispatchers are still coming up, the configured warm-up serve
    /// count has not been reached, or the tier is draining. This is
    /// the `/readyz` answer (via [`obsv::OpsSource`]).
    pub fn readiness(&self) -> Result<(), String> {
        if self.ready.draining.load(Ordering::Acquire) {
            return Err("draining".to_string());
        }
        let live = self.ready.live_dispatchers.load(Ordering::Acquire);
        let expected = self.ready.expected_dispatchers;
        if live < expected {
            return Err(format!("{live}/{expected} dispatchers live"));
        }
        let served: u64 = self.shards.iter().map(|s| s.metrics.served.get()).sum();
        if served < self.ready.min_warm_serves {
            return Err(format!(
                "warming: {served}/{} serves",
                self.ready.min_warm_serves
            ));
        }
        Ok(())
    }

    /// Graceful shutdown: mark not-ready, close the admission queues,
    /// join the dispatchers, and fulfil everything still queued as
    /// [`ShedReason::ShuttingDown`]. Idempotent; [`Drop`] calls it.
    pub fn drain(&self) {
        self.ready.draining.store(true, Ordering::Release);
        for shard in &self.shards {
            shard.queue.close();
        }
        let handles: Vec<JoinHandle<()>> = self.dispatchers.lock().unwrap().drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
        // Whatever was admitted but never dequeued resolves as shed —
        // no ticket is left hanging.
        for shard in &self.shards {
            for queued in shard.queue.drain_remaining() {
                shard.metrics.queue_depth.dec();
                shard.tenant_shed[queued.tenant_index].inc();
                queued
                    .slot
                    .fulfil(Err(TierError::Shed(ShedReason::ShuttingDown)));
            }
        }
    }

    /// Statistics snapshot across all shards.
    pub fn stats(&self) -> TierStats {
        TierStats {
            shards: self
                .shards
                .iter()
                .map(|s| ShardStats {
                    admitted: s.metrics.admitted.get(),
                    served: s.metrics.served.get(),
                    shed_queue_full: s.metrics.shed_queue_full.get(),
                    shed_expired: s.metrics.shed_expired.get(),
                    queue_depth: s.metrics.queue_depth.get(),
                    prepared_hits: s.metrics.prepared_hits.get(),
                    prepared_misses: s.metrics.prepared_misses.get(),
                    prepared_evictions: s.metrics.prepared_evictions.get(),
                    engine: s.engine.stats(),
                })
                .collect(),
            shed_unknown_tenant: self.shed_unknown_tenant.get(),
        }
    }
}

impl Drop for ServeTier {
    fn drop(&mut self) {
        self.drain();
    }
}

/// What the ops HTTP server asks the tier.
impl obsv::OpsSource for ServeTier {
    fn ready(&self) -> Result<(), String> {
        self.readiness()
    }

    fn health_detail(&self) -> String {
        let stats = self.stats();
        let queued: i64 = stats.shards.iter().map(|s| s.queue_depth).sum();
        format!(
            "\"shards\":{},\"queued\":{queued},\"served\":{},\"shed\":{},\"draining\":{}",
            stats.shards.len(),
            stats.served(),
            stats.shed(),
            self.ready.draining.load(Ordering::Acquire),
        )
    }

    fn trace_index(&self) -> Vec<(u64, u64)> {
        self.traced.lock().unwrap().iter().copied().collect()
    }

    fn request_trace_json(&self, request_id: u64) -> Option<String> {
        self.trace_chrome_json(request_id)
    }
}

/// Register `# HELP` descriptions for the tier's metric families once
/// per registry (idempotent; last description wins).
fn describe_tier_metrics(registry: &Registry) {
    registry.describe("tier.admitted", "Requests admitted to a shard queue.");
    registry.describe("tier.served", "Requests answered end to end.");
    registry.describe("tier.shed", "Requests refused, by shard and reason.");
    registry.describe(
        "tier.shed_tenant",
        "Requests refused, attributed to the submitting tenant (feeds the SLO tracker).",
    );
    registry.describe("tier.queue_depth", "Requests currently queued per shard.");
    registry.describe(
        "tier.request",
        "End-to-end request latency per tenant, nanoseconds.",
    );
    registry.describe("tier.prepared.hits", "Prepared-matrix cache hits.");
    registry.describe("tier.prepared.misses", "Prepared-matrix cache misses.");
    registry.describe(
        "tier.prepared.evictions",
        "Prepared-matrix cache entries evicted.",
    );
}

/// A shard dispatcher: pop, expire-or-execute, fulfil, repeat.
fn dispatch_loop(shard: &ShardInner) {
    loop {
        // Publish idle time on the stage board so a live profile shows
        // dispatchers waiting for work, not just executing it.
        let queued = {
            let _stage = telemetry::stage("tier.dispatch.wait");
            shard.queue.pop()
        };
        let Some(queued) = queued else { break };
        shard.metrics.queue_depth.dec();
        let dequeued = Instant::now();
        // The queue-wait interval, learned after the fact.
        queued
            .trace
            .complete("admission.wait", queued.submitted, dequeued, Vec::new());
        if queued.request.deadline.is_some_and(|d| d <= dequeued) {
            shard.metrics.shed_expired.inc();
            shard.tenant_shed[queued.tenant_index].inc();
            queued.trace.instant("tier.expired");
            queued
                .slot
                .fulfil(Err(TierError::Shed(ShedReason::Expired)));
            continue;
        }
        let result = execute(shard, &queued, dequeued);
        if result.is_ok() {
            shard.metrics.served.inc();
            // Sampled requests pin their trace ID onto the latency
            // histogram as an exemplar — the `/metrics` ↔ `/traces/<id>`
            // bridge.
            shard.tenant_hists[queued.tenant_index].record_duration_exemplar(
                queued.submitted.elapsed(),
                queued.trace.trace_id().unwrap_or(0),
            );
        } else if matches!(result, Err(TierError::Shed(ShedReason::Expired))) {
            shard.metrics.shed_expired.inc();
            shard.tenant_shed[queued.tenant_index].inc();
        }
        queued.slot.fulfil(result);
    }
}

/// Serve one dequeued request end to end on its shard.
fn execute(
    shard: &ShardInner,
    queued: &QueuedRequest,
    dequeued: Instant,
) -> Result<SpmvResponse, TierError> {
    let request = &queued.request;
    let mut span = queued.trace.span("tier.execute");
    span.arg("algo", request.algo.name());
    span.arg("kernel", request.kernel.name());
    let ctx = span.ctx();
    let content_hash = request.matrix.content_hash();

    // 0. The policy decision: honour the requested reordering, or
    //    serve in original order — settled before any reorder work is
    //    queued, and recorded as its own trace stage.
    let decision = {
        let cached = shard
            .engine
            .peek_cached(&request.matrix, request.algo)
            .is_some();
        let _stage = telemetry::stage("policy.decide");
        let mut decide = ctx.span("policy.decide");
        decide.arg("mode", shard.policy.mode().as_str());
        decide.arg("requested", request.algo.name());
        let decision =
            shard
                .policy
                .decide(request.matrix.matrix(), content_hash, request.algo, cached);
        decide.arg("chosen", decision.algo.name());
        decide.arg("reason", decision.reason);
        decision
    };
    let algo = decision.algo;

    // 1. The ordering, through the shard engine's caches — with the
    //    deadline attached, so an expiry cancels it pre-reorder.
    let ordering = {
        let _stage = telemetry::stage("engine.request");
        let ticket = shard.engine.submit_opts(
            &request.matrix,
            algo,
            SubmitOptions {
                deadline: request.deadline,
                trace: ctx.clone(),
            },
        );
        ticket.wait().map_err(|e| match e {
            EngineError::Expired => TierError::Shed(ShedReason::Expired),
            other => TierError::Engine(other),
        })?
    };
    if decision.reorders() {
        // The ledger bills the one-time cost exactly once per key; a
        // cache-served ordering re-reports the same figure harmlessly.
        shard
            .policy
            .record_reorder_paid(content_hash, algo, ordering.compute_seconds);
    }
    // An ordering served from cache is instant, but a computed one may
    // have consumed the whole budget: re-check before the SpMV work.
    if request.deadline.is_some_and(|d| d <= Instant::now()) {
        ctx.instant("tier.expired");
        return Err(TierError::Shed(ShedReason::Expired));
    }

    // 2. The reordered matrix, from the shard's prepared cache. Built
    //    outside the lock: two dispatchers racing the same key both
    //    build, one insert wins — benign, and the lock never blocks on
    //    an O(nnz) permutation.
    let key = (content_hash, algo);
    let prepared = shard.prepared.lock().unwrap().get(&key);
    let prepared = match prepared {
        Some(p) => {
            shard.metrics.prepared_hits.inc();
            p
        }
        None => {
            shard.metrics.prepared_misses.inc();
            let _stage = telemetry::stage("reorder.permute");
            let mut permute = ctx.span("reorder.permute");
            permute.arg("rows", request.matrix.matrix().nrows() as u64);
            let reordered = ordering
                .apply_on(
                    request.matrix.matrix(),
                    team::Exec::Team(shard.engine.reorder_team()),
                )
                .map_err(|e| {
                    TierError::Engine(EngineError::Compute {
                        algo,
                        message: e.to_string(),
                    })
                })?;
            drop(permute);
            let p = Arc::new(Prepared {
                handle: MatrixHandle::from_matrix(reordered),
                result: ordering.to_reorder_result(),
            });
            let evicted = shard.prepared.lock().unwrap().insert(key, Arc::clone(&p));
            shard.metrics.prepared_evictions.add(evicted);
            p
        }
    };

    // 3. The planned kernel for the reordered matrix (plan cache).
    let kernel = {
        let _stage = telemetry::stage("engine.plan");
        shard
            .engine
            .plan_traced(&prepared.handle, request.kernel, shard.spmv_threads, &ctx)
    };

    // 4. Permute in, multiply, permute out: the caller sees original
    //    index space on both sides.
    let xp = prepared.result.permute_input(&request.x);
    let mut yp = vec![0.0; prepared.handle.matrix().nrows()];
    let spmv_started = Instant::now();
    {
        let _stage = telemetry::stage("serve.spmv");
        let mut compute = ctx.span("serve.spmv");
        compute.arg("kernel", request.kernel.name());
        kernel.execute(&shard.spmv_team, &xp, &mut yp);
    }
    // Close the feedback loop: the observed service time under the
    // chosen ordering feeds the ledger and the online corrector.
    shard
        .policy
        .observe_spmv(content_hash, algo, spmv_started.elapsed().as_secs_f64());
    let y = {
        let _stage = telemetry::stage("answer.unpermute");
        let _unpermute = ctx.span("answer.unpermute");
        prepared.result.unpermute_output(&yp)
    };

    Ok(SpmvResponse {
        y,
        shard: shard.index,
        request_id: queued.request_id,
        queue_wait: dequeued - queued.submitted,
        service: dequeued.elapsed(),
    })
}
