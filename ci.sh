#!/bin/sh
# The repo's CI gate, runnable locally. Order matters: the cheap
# style/lint checks on the serving layer run after the functional gate
# so a broken build is reported first.
set -eux

# Tier-1 gate: the umbrella crate must build in release and every test
# in the workspace must pass.
cargo build --release
cargo test -q --workspace

# Workspace hygiene: every crate stays warning-free and canonically
# formatted, and the rendered docs build without warnings.
cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

# Executor smoke: the scoped-spawn vs persistent-team comparison bench
# must run end to end (single iteration; no timings recorded).
cargo bench -p bench --bench team_overhead -- --test

# Reordering-pipeline smoke: the sequential vs team-parallel stage
# scaling bench must run end to end (it also asserts parallel RCM is
# byte-identical to sequential before timing anything).
cargo bench -p bench --bench reorder_scaling -- --test

# Serving-tier saturation bench smoke: the cached answer path and the
# offered-load sweep harness must run end to end (no JSON written).
cargo bench -p bench --bench serve_saturation -- --test

# Flight-recorder smoke: a traced serve replay must dump Chrome-trace
# files that pass the validator (parse, balanced B/E pairs, every
# serving + pipeline stage covered, >= 2 per-worker timeline lanes).
TRACE_DIR="$(mktemp -d)"
./target/release/serve --size small --requests 400 --clients 2 \
    --trace-dir "$TRACE_DIR" --trace-sample-rate 0.05 --seed 7 > /dev/null
./target/release/tracecheck "$TRACE_DIR"
rm -rf "$TRACE_DIR"

# Incremental-reordering bench smoke: splice-after-delta must be
# byte-identical to a full recompute on both multi-component families
# before any timing (asserted inside the bench).
cargo bench -p bench --bench delta_reorder -- --test

# Dynamic-matrix smoke: a traced replay with an open-loop mutator must
# serve verified answers for delta descendants, and the dumped traces
# must show the engine actually splicing cached orderings
# (reorder.splice) rather than recomputing from scratch, plus the AMD
# round-phase sub-stages (reorder.amd.update) on fresh AMD computes.
MUTATE_TRACE_DIR="$(mktemp -d)"
./target/release/serve --size small --requests 400 --clients 2 \
    --shards 2 --mutate-rate 20 --mutate-edges 6 \
    --trace-dir "$MUTATE_TRACE_DIR" --trace-sample-rate 1.0 --seed 7 > /dev/null
./target/release/tracecheck "$MUTATE_TRACE_DIR" --require reorder.splice \
    --require reorder.amd.update
rm -rf "$MUTATE_TRACE_DIR"

# Serving-tier overload smoke: an open-loop run over four shards with a
# tight queue and deadlines must deliver verified answers, shed the
# overflow with a reason, and leave every queue-depth gauge at zero.
./target/release/serve --size small --requests 600 --clients 4 \
    --shards 4 --tenants 2 --offered-load 400 --deadline-ms 200 \
    --queue-capacity 32 --seed 7 > /dev/null

# Adaptive-policy smoke: a closed-loop replay under --policy adaptive
# must deliver verified answers end to end (policy.decide runs on
# every request; the tracecheck gate above already requires the stage
# on sampled traces).
./target/release/serve --size small --requests 400 --clients 2 \
    --policy adaptive --seed 7 > /dev/null

# Policy serving-contract bench smoke: harness must run end to end
# (no replay sweep, no JSON written).
cargo bench -p bench --bench policy_serve -- --test

# Break-even frontier smoke: measure + policy replay on a tiny rep
# axis (no artifacts written, agreement gate not enforced).
./target/release/frontier --size small --test > /dev/null

# Ops-plane smoke: a listening serve must expose live metrics, health,
# and SLO accounting over HTTP while the replay runs. The linger keeps
# the server up after the replay so the curls race nothing.
OPS_ADDR="127.0.0.1:17117"
./target/release/serve --size small --requests 300 --clients 2 \
    --offered-load 150 --listen "$OPS_ADDR" --listen-linger-ms 12000 \
    --seed 7 > /dev/null &
SERVE_PID=$!
for _ in $(seq 1 50); do
    if curl -sf "http://$OPS_ADDR/healthz" > /dev/null 2>&1; then break; fi
    sleep 0.2
done
curl -sf "http://$OPS_ADDR/healthz" | grep -q '"status":"ok"'
curl -sf "http://$OPS_ADDR/readyz" > /dev/null
curl -sf "http://$OPS_ADDR/metrics" > /tmp/ops_metrics.txt
grep -q '^tier_admitted' /tmp/ops_metrics.txt
grep -q '^slo_budget_remaining' /tmp/ops_metrics.txt
curl -sf "http://$OPS_ADDR/slo.json" | grep -q '"tenants"'
curl -sf "http://$OPS_ADDR/profile?seconds=0.3" | grep -q '# samples'
wait "$SERVE_PID"
rm -f /tmp/ops_metrics.txt

# Bench trajectory tripwire: fresh team-dispatch and splice probes must
# run against the recorded BENCH_PR*.json baselines (smoke mode:
# structural validation only, thresholds not enforced).
./target/release/benchdiff --test > /dev/null

echo "ci: all gates passed"
