#!/bin/sh
# The repo's CI gate, runnable locally. Order matters: the cheap
# style/lint checks on the serving layer run after the functional gate
# so a broken build is reported first.
set -eux

# Tier-1 gate: the umbrella crate must build in release and every test
# in the workspace must pass.
cargo build --release
cargo test -q --workspace

# Workspace hygiene: every crate stays warning-free and canonically
# formatted, and the rendered docs build without warnings.
cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

# Executor smoke: the scoped-spawn vs persistent-team comparison bench
# must run end to end (single iteration; no timings recorded).
cargo bench -p bench --bench team_overhead -- --test

echo "ci: all gates passed"
